package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"mdxopt/internal/datagen"
	"mdxopt/internal/exec"
	"mdxopt/internal/mem"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/storage"
)

// The idx experiment measures the vectorized shared-index probe —
// word-at-a-time bitmap routing, page-batched fetch, morsel-parallel
// union scan — against the scalar tuple-at-a-time loop it replaced
// (exec.Env.NoVectorIndex), in two parts.
//
// The kernel microbenchmark isolates the probe from pipeline and
// bitmap construction (exec.ProbeKernelBench): the union and the query
// bitmaps are built once, the pool is warmed, and the whole union is
// re-probed for a fixed number of passes per representation. The
// workload is the vectorized path's home turf and the scalar path's
// worst case — many queries over a dense union — because the scalar
// loop pays one bitmap Get per (union tuple, query) while the routing
// kernel pays one AND per (word, query). The quantities of interest
// are fetched union tuples per second — the vectorized kernel must
// clear 3x scalar — and its steady-state allocation rate (zero).
//
// The equivalence sweep then runs the full SharedIndex operator across
// worker counts and memory budgets and requires every cell to be
// byte-identical to the serial scalar baseline: same results, same
// deterministic counters (BitTests, TuplesFetched, TuplesAgg,
// BitmapWords), same physical page reads from a cold pool, and a
// broker peak within the budget.

type idxConfig struct {
	Scale         float64  `json:"scale"`
	Queries       []string `json:"queries"`
	KernelPasses  int      `json:"kernel_passes"`
	KernelRounds  int      `json:"kernel_rounds"`
	Workers       []int    `json:"workers"`
	TightDivisor  int64    `json:"tight_budget_divisor"` // tight budget = ungoverned peak / divisor + floor
	FloorBytes    int64    `json:"required_floor_bytes"` // required-state floor added to the tight budget
	MinSpeedup    float64  `json:"min_speedup"`
	MaxAllocsPass float64  `json:"max_allocs_per_pass"`
}

// idxKernel is one ProbeKernelBench measurement.
type idxKernel struct {
	Repr          string  `json:"repr"` // "vector" or "scalar"
	Passes        int     `json:"passes"`
	Tuples        int64   `json:"tuples"`
	Routed        int64   `json:"routed"`
	Folds         int64   `json:"folds"`
	TuplesPerSec  float64 `json:"tuples_per_sec"`
	AllocsPerPass float64 `json:"allocs_per_pass"`
	WallMS        float64 `json:"wall_ms"`
}

// idxCell is one (representation, workers, budget) SharedIndex run.
type idxCell struct {
	Repr          string  `json:"repr"`
	Workers       int     `json:"workers"`
	BudgetBytes   int64   `json:"budget_bytes"` // 0 = ungoverned (tracked, not enforced)
	WallMS        float64 `json:"wall_ms"`
	BitTests      int64   `json:"bit_tests"`
	TuplesFetched int64   `json:"tuples_fetched"`
	TuplesAgg     int64   `json:"tuples_agg"`
	BitmapWords   int64   `json:"bitmap_words"`
	PageReads     int64   `json:"page_reads"` // physical reads from a cold pool
	PeakBytes     int64   `json:"peak_bytes"`
	WithinBudget  bool    `json:"peak_within_budget"`
	Identical     bool    `json:"identical_to_baseline"`
}

type idxReport struct {
	Config  idxConfig   `json:"config"`
	Kernels []idxKernel `json:"kernels"`
	Speedup float64     `json:"kernel_speedup"`
	Cells   []idxCell   `json:"cells"`
}

// idxWorkload builds the experiment's query set: index-answerable
// queries on the A'B'C'D view whose (A, B) predicates tile the level-1
// A'xB' grid into disjoint rectangular blocks. The bitmaps are pairwise
// disjoint and their union is the entire view (a fully dense union)
// while each query claims only its block — the configuration where
// scalar re-testing does maximal wasted work (all but one of the
// per-tuple bitmap Gets miss) and word-at-a-time routing does none,
// because the scalar loop's cost grows with the query count while the
// routing kernel's is per word. The group-by keeps C and D coarse so
// the shared fold cost — identical in both representations — does not
// drown the probe cost this experiment isolates.
func idxWorkload(schema *star.Schema) ([]*query.Query, error) {
	const blocks = 9 // 9x9 grid = 81 queries
	levels := []int{1, 1, 2, 1}
	cardA := int(schema.Dims[0].Card(levels[0]))
	cardB := int(schema.Dims[1].Card(levels[1]))
	if cardA < blocks || cardB < blocks {
		return nil, fmt.Errorf("idx: dims %s/%s have %d/%d level-1 members, need %d",
			schema.Dims[0].Name, schema.Dims[1].Name, cardA, cardB, blocks)
	}
	slice := func(card, i int) []int32 {
		lo, hi := i*card/blocks, (i+1)*card/blocks
		ms := make([]int32, 0, hi-lo)
		for m := lo; m < hi; m++ {
			ms = append(ms, int32(m))
		}
		return ms
	}
	var queries []*query.Query
	for ai := 0; ai < blocks; ai++ {
		for bi := 0; bi < blocks; bi++ {
			preds := make([]query.Predicate, schema.NumDims())
			preds[0] = query.Predicate{Members: slice(cardA, ai)}
			preds[1] = query.Predicate{Members: slice(cardB, bi)}
			q, err := query.New(fmt.Sprintf("I%d_%d", ai+1, bi+1), schema, levels, preds)
			if err != nil {
				return nil, err
			}
			queries = append(queries, q)
		}
	}
	return queries, nil
}

// runIdxCell cold-resets the database, runs one SharedIndex cell, and
// compares it to want (or fills want on the baseline cell).
func runIdxCell(db *star.Database, view *star.View, queries []*query.Query, repr string, workers int, budget int64, want *[]*exec.Result) (idxCell, error) {
	cell := idxCell{Repr: repr, Workers: workers, BudgetBytes: budget}
	if err := db.ColdReset(); err != nil {
		return cell, err
	}
	broker := mem.New(budget)
	env := exec.NewEnv(db)
	env.Mem = broker
	env.Parallelism = workers
	env.NoVectorIndex = repr == "scalar"

	readsBefore := view.Heap.File().IOStats().Reads()
	var st exec.Stats
	start := time.Now()
	results, err := exec.SharedIndex(env, view, queries, &st)
	if err != nil {
		return cell, err
	}
	cell.WallMS = float64(time.Since(start).Microseconds()) / 1e3
	cell.BitTests = st.BitTests
	cell.TuplesFetched = st.TuplesFetched
	cell.TuplesAgg = st.TuplesAgg
	cell.BitmapWords = st.BitmapWords
	cell.PageReads = view.Heap.File().IOStats().Reads() - readsBefore
	bs := broker.Stats()
	cell.PeakBytes = bs.Peak
	cell.WithinBudget = budget == 0 || bs.Peak <= budget
	if bs.Used != 0 {
		return cell, fmt.Errorf("idx: %s workers=%d budget=%d: broker not drained (%d bytes held)", repr, workers, budget, bs.Used)
	}

	if *want == nil {
		*want = results
		cell.Identical = true
		return cell, nil
	}
	cell.Identical = true
	for i := range results {
		if !results[i].Equal((*want)[i]) {
			cell.Identical = false
		}
	}
	return cell, nil
}

// runIdx builds (or reuses) the benchmark database, runs the probe
// kernel microbenchmark and the equivalence sweep, enforces the gates,
// and optionally writes the JSON report.
func runIdx(w io.Writer, dir string, scale float64, jsonPath string) error {
	cfg := idxConfig{
		Scale:         scale,
		KernelPasses:  8,
		KernelRounds:  5,
		Workers:       []int{1, 2, 4},
		TightDivisor:  4,
		MinSpeedup:    3.0,
		MaxAllocsPass: 1,
	}

	if _, err := os.Stat(dir); os.IsNotExist(err) {
		start := time.Now()
		db, err := datagen.Build(dir, datagen.PaperSpec(scale))
		if err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "built database in %s\n", time.Since(start).Round(time.Millisecond))
	}
	db, err := star.OpenWith(dir, storage.PoolOpts{Frames: 4096})
	if err != nil {
		return err
	}
	defer db.Close()
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	if view == nil {
		return fmt.Errorf("idx: A'B'C'D view not materialized")
	}
	queries, err := idxWorkload(db.Schema)
	if err != nil {
		return err
	}
	for _, q := range queries {
		cfg.Queries = append(cfg.Queries, fmt.Sprintf("%s=%s|A in %d members", q.Name, q.GroupByName(), len(q.Preds[0].Members)))
	}

	rep := idxReport{Config: cfg}

	// Part 1: the isolated probe-kernel microbenchmark. The two
	// representations alternate across several rounds and each reports
	// its best round, so machine-wide drift (frequency scaling, a noisy
	// neighbor) cannot skew the ratio the gate enforces.
	fmt.Fprintf(w, "idx: scale %g, %d queries over %s (%d rows), %d rounds x %d kernel passes\n",
		scale, len(queries), view, view.Rows(), cfg.KernelRounds, cfg.KernelPasses)
	var best [2]*exec.ProbeKernelResult
	for round := 0; round < cfg.KernelRounds; round++ {
		for i, repr := range []string{"vector", "scalar"} {
			env := exec.NewEnv(db)
			env.NoVectorIndex = repr == "scalar"
			r, err := exec.ProbeKernelBench(env, view, queries, cfg.KernelPasses)
			if err != nil {
				return err
			}
			if (repr == "vector") != r.Vectorized {
				return fmt.Errorf("idx: %s kernel ran vectorized=%v", repr, r.Vectorized)
			}
			if best[i] == nil || r.TuplesPerSec > best[i].TuplesPerSec {
				best[i] = r
			}
		}
	}
	var tps [2]float64
	for i, repr := range []string{"vector", "scalar"} {
		r := best[i]
		k := idxKernel{
			Repr:          repr,
			Passes:        r.Passes,
			Tuples:        r.Tuples,
			Routed:        r.Routed,
			Folds:         r.Folds,
			TuplesPerSec:  r.TuplesPerSec,
			AllocsPerPass: r.AllocsPerPass,
			WallMS:        float64(r.Nanos) / 1e6,
		}
		rep.Kernels = append(rep.Kernels, k)
		tps[i] = r.TuplesPerSec
		fmt.Fprintf(w, "  kernel %-6s %12.0f tuples/s  %8.2f ms  %6.2f allocs/pass (best of %d)\n",
			repr, k.TuplesPerSec, k.WallMS, k.AllocsPerPass, cfg.KernelRounds)
	}
	rep.Speedup = tps[0] / tps[1]
	fmt.Fprintf(w, "  kernel speedup %.2fx (vector vs scalar)\n", rep.Speedup)
	if rep.Kernels[0].Tuples != rep.Kernels[1].Tuples {
		return fmt.Errorf("idx: kernels fetched different unions: %d vs %d",
			rep.Kernels[0].Tuples, rep.Kernels[1].Tuples)
	}

	// Part 2: the equivalence sweep. The scalar serial ungoverned run is
	// the baseline; every other cell must match it exactly. The tight
	// budget sits under the ungoverned peak but above the probe's
	// required state — result bitmaps, union, probe buffers and the
	// spill machinery's per-table floor are all overdraft grants that
	// must fit for peak <= budget to be satisfiable.
	var want []*exec.Result
	base, err := runIdxCell(db, view, queries, "scalar", 1, 0, &want)
	if err != nil {
		return err
	}
	rep.Cells = append(rep.Cells, base)
	maxWorkers := cfg.Workers[len(cfg.Workers)-1]
	bitmapBytes := (view.Rows() + 63) / 64 * 8
	tpp := int64(view.Heap.TuplesPerPage())
	sch := view.Heap.Schema()
	probeBuf := tpp*int64(4*sch.NumKeys()+8*sch.NumMeasures()) + 8*tpp + (tpp/64+2)*8
	cfg.FloorBytes = int64(len(queries)+1)*bitmapBytes +
		int64(maxWorkers+1)*probeBuf +
		int64((maxWorkers+1)*len(queries))*4*storage.PageSize
	rep.Config = cfg
	tight := base.PeakBytes/cfg.TightDivisor + cfg.FloorBytes
	fmt.Fprintf(w, "  sweep: ungoverned peak %d KiB, tight budget %d KiB\n", base.PeakBytes>>10, tight>>10)
	fmt.Fprintf(w, "  %-6s %7s %10s %10s %10s %12s %9s %8s %5s\n",
		"repr", "workers", "budgetKiB", "ms", "bittests", "fetched", "pagereads", "peakKiB", "ok")
	cells := []struct {
		repr    string
		workers int
	}{{"scalar", 1}}
	for _, workers := range cfg.Workers {
		cells = append(cells, struct {
			repr    string
			workers int
		}{"vector", workers})
	}
	for _, c := range cells {
		for _, budget := range []int64{0, tight} {
			cell, err := runIdxCell(db, view, queries, c.repr, c.workers, budget, &want)
			if err != nil {
				return err
			}
			rep.Cells = append(rep.Cells, cell)
			ok := "yes"
			if !cell.Identical || !cell.WithinBudget {
				ok = "NO"
			}
			fmt.Fprintf(w, "  %-6s %7d %10d %10.2f %10d %12d %9d %8d %5s\n",
				cell.Repr, cell.Workers, cell.BudgetBytes>>10, cell.WallMS,
				cell.BitTests, cell.TuplesFetched, cell.PageReads, cell.PeakBytes>>10, ok)
		}
	}

	// Gates.
	if rep.Speedup < cfg.MinSpeedup {
		return fmt.Errorf("idx: kernel speedup %.2fx below %.1fx", rep.Speedup, cfg.MinSpeedup)
	}
	if a := rep.Kernels[0].AllocsPerPass; a >= cfg.MaxAllocsPass {
		return fmt.Errorf("idx: vectorized kernel allocates %.2f objects per pass, want < %.0f", a, cfg.MaxAllocsPass)
	}
	for _, c := range rep.Cells {
		if !c.Identical {
			return fmt.Errorf("idx: %s workers=%d budget=%d: results differ from baseline", c.Repr, c.Workers, c.BudgetBytes)
		}
		if !c.WithinBudget {
			return fmt.Errorf("idx: %s workers=%d: peak %d exceeds budget %d", c.Repr, c.Workers, c.PeakBytes, c.BudgetBytes)
		}
		if c.BitTests != base.BitTests || c.TuplesFetched != base.TuplesFetched ||
			c.TuplesAgg != base.TuplesAgg || c.BitmapWords != base.BitmapWords {
			return fmt.Errorf("idx: %s workers=%d budget=%d: counters (%d,%d,%d,%d) differ from baseline (%d,%d,%d,%d)",
				c.Repr, c.Workers, c.BudgetBytes,
				c.BitTests, c.TuplesFetched, c.TuplesAgg, c.BitmapWords,
				base.BitTests, base.TuplesFetched, base.TuplesAgg, base.BitmapWords)
		}
		if c.PageReads != base.PageReads {
			return fmt.Errorf("idx: %s workers=%d budget=%d: %d page reads, baseline %d",
				c.Repr, c.Workers, c.BudgetBytes, c.PageReads, base.PageReads)
		}
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}

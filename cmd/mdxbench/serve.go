package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mdxopt"
	"mdxopt/internal/workload"
)

// The serve experiment measures the serving layer this repository adds
// on top of the paper: concurrent clients replay a Poisson Q1–Q9
// workload against a buffer pool far smaller than the data, once
// through the admission scheduler (cross-request batches sharing
// passes) and once with every request planned and run on its own.

// serveConfig parameterizes one serve run.
type serveConfig struct {
	Scale      float64 `json:"scale"`
	Clients    int     `json:"clients"`
	PerClient  int     `json:"queries_per_client"`
	RatePerSec float64 `json:"arrival_rate_per_sec"`
	PoolFrames int     `json:"pool_frames"`
	WindowMS   float64 `json:"batch_window_ms"`
	Reps       int     `json:"reps"`
}

// serveSide is the measured outcome of one serving mode.
type serveSide struct {
	WallMS     float64 `json:"wall_ms"` // mean per rep
	QueriesSec float64 `json:"queries_per_sec"`
	PageReads  int64   `json:"page_reads"` // attributed, mean per rep
}

type serveReport struct {
	Config    serveConfig `json:"config"`
	Batched   serveSide   `json:"batched"`
	Separate  serveSide   `json:"separate"`
	Speedup   float64     `json:"throughput_speedup"`
	PageRatio float64     `json:"page_read_ratio"` // separate / batched
	Coalesced int64       `json:"coalesced_submissions"`
	Batches   int64       `json:"batches"`
}

// serveReplay runs the workload once: one goroutine per client, each
// pacing its requests by the shared Poisson offsets. It returns the
// wall time and total attributed page reads.
func serveReplay(db *mdxopt.DB, perClient [][]workload.Arrival, opts mdxopt.Options) (time.Duration, int64, error) {
	start := time.Now()
	var pages atomic.Int64
	errs := make(chan error, len(perClient))
	var wg sync.WaitGroup
	for _, reqs := range perClient {
		wg.Add(1)
		go func(reqs []workload.Arrival) {
			defer wg.Done()
			for _, req := range reqs {
				if wait := req.At - time.Since(start); wait > 0 {
					time.Sleep(wait)
				}
				a, err := db.QueryWith(req.Src, opts)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", req.Name, err)
					return
				}
				pages.Add(a.Stats.PageReads)
			}
		}(reqs)
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errs:
		return 0, 0, err
	default:
	}
	return wall, pages.Load(), nil
}

// runServe builds (or reuses) the benchmark database, replays the
// workload in both modes, prints a summary, and optionally writes the
// JSON report.
func runServe(w io.Writer, dir string, scale float64, jsonPath string) error {
	cfg := serveConfig{
		Scale:      scale,
		Clients:    8,
		PerClient:  4,
		RatePerSec: 2000,
		PoolFrames: 64,
		WindowMS:   5,
		Reps:       5,
	}

	if _, err := os.Stat(dir); os.IsNotExist(err) {
		start := time.Now()
		db, err := mdxopt.CreateSample(dir, scale)
		if err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "built database in %s\n", time.Since(start).Round(time.Millisecond))
	}
	db, err := mdxopt.OpenWith(dir, mdxopt.OpenOptions{PoolFrames: cfg.PoolFrames})
	if err != nil {
		return err
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(7))
	arrivals := workload.Arrivals(rng, cfg.Clients*cfg.PerClient, cfg.RatePerSec)
	perClient := workload.PerClient(arrivals, cfg.Clients)
	queries := float64(cfg.Clients * cfg.PerClient)

	measure := func(opts mdxopt.Options) (serveSide, error) {
		// One warm-up rep settles the pool and the plan caches.
		if _, _, err := serveReplay(db, perClient, opts); err != nil {
			return serveSide{}, err
		}
		var wall time.Duration
		var pages int64
		for rep := 0; rep < cfg.Reps; rep++ {
			wl, pg, err := serveReplay(db, perClient, opts)
			if err != nil {
				return serveSide{}, err
			}
			wall += wl
			pages += pg
		}
		mean := wall / time.Duration(cfg.Reps)
		return serveSide{
			WallMS:     float64(mean.Microseconds()) / 1e3,
			QueriesSec: queries / mean.Seconds(),
			PageReads:  pages / int64(cfg.Reps),
		}, nil
	}

	db.EnableBatching(mdxopt.BatchConfig{
		Window:   time.Duration(cfg.WindowMS * float64(time.Millisecond)),
		MaxBatch: cfg.Clients,
		MaxQueue: 4 * cfg.Clients,
	})
	batched, err := measure(mdxopt.Options{Batching: true})
	if err != nil {
		return err
	}
	bs := db.BatchStats()
	db.DisableBatching()

	separate, err := measure(mdxopt.Options{})
	if err != nil {
		return err
	}

	rep := serveReport{
		Config:    cfg,
		Batched:   batched,
		Separate:  separate,
		Speedup:   batched.QueriesSec / separate.QueriesSec,
		Coalesced: bs.Coalesced,
		Batches:   bs.Batches,
	}
	if batched.PageReads > 0 {
		rep.PageRatio = float64(separate.PageReads) / float64(batched.PageReads)
	}

	fmt.Fprintf(w, "serve: %d clients x %d queries, scale %g, %d-frame pool\n",
		cfg.Clients, cfg.PerClient, cfg.Scale, cfg.PoolFrames)
	fmt.Fprintf(w, "  batched : %8.2f ms/run  %8.0f queries/s  %6d page reads\n",
		batched.WallMS, batched.QueriesSec, batched.PageReads)
	fmt.Fprintf(w, "  separate: %8.2f ms/run  %8.0f queries/s  %6d page reads\n",
		separate.WallMS, separate.QueriesSec, separate.PageReads)
	fmt.Fprintf(w, "  speedup %.2fx throughput, %.1fx fewer page reads (%d submissions coalesced into %d batches)\n",
		rep.Speedup, rep.PageRatio, rep.Coalesced, rep.Batches)

	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"mdxopt/internal/datagen"
	"mdxopt/internal/exec"
	"mdxopt/internal/mem"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/storage"
)

// The agg experiment measures the packed-key fold kernel against the
// byte-key fallback it replaced, in two parts.
//
// The kernel microbenchmark isolates the fold loop from I/O: the base
// table is decoded once into captured batches and re-fed through the
// query pipelines for a fixed number of passes (exec.FoldKernelBench),
// once per representation. The quantities of interest are the probed
// tuples per second — the packed kernel must clear 2x the byte path —
// and the packed kernel's steady-state allocation rate, which must be
// zero.
//
// The equivalence sweep then runs the full shared-scan operator under
// both representations across worker counts and memory budgets
// (including a budget tight enough to force grace-hash spilling) and
// requires every cell's results to be identical to the serial
// ungoverned byte-key baseline, with the broker's peak within budget.

type aggConfig struct {
	Scale         float64  `json:"scale"`
	Queries       []string `json:"queries"`
	KernelPasses  int      `json:"kernel_passes"`
	Workers       []int    `json:"workers"`
	TightDivisor  int64    `json:"tight_budget_divisor"` // tight budget = ungoverned peak / divisor + floor
	FloorBytes    int64    `json:"required_floor_bytes"` // required-state floor added to the tight budget
	MinSpeedup    float64  `json:"min_speedup"`
	MaxAllocsPass float64  `json:"max_allocs_per_pass"`
}

// aggKernel is one FoldKernelBench measurement.
type aggKernel struct {
	Repr          string  `json:"repr"` // "packed" or "bytes"
	Passes        int     `json:"passes"`
	Tuples        int64   `json:"tuples"`
	Folds         int64   `json:"folds"`
	TuplesPerSec  float64 `json:"tuples_per_sec"`
	AllocsPerPass float64 `json:"allocs_per_pass"`
	WallMS        float64 `json:"wall_ms"`
}

// aggCell is one (representation, workers, budget) shared-scan run.
type aggCell struct {
	Repr         string  `json:"repr"`
	Workers      int     `json:"workers"`
	BudgetBytes  int64   `json:"budget_bytes"` // 0 = ungoverned (tracked, not enforced)
	WallMS       float64 `json:"wall_ms"`
	TuplesAgg    int64   `json:"tuples_agg"`
	PackedFolds  int64   `json:"packed_folds"`
	SpillBytes   int64   `json:"spill_bytes"`
	PeakBytes    int64   `json:"peak_bytes"`
	WithinBudget bool    `json:"peak_within_budget"`
	Identical    bool    `json:"identical_to_baseline"`
}

type aggReport struct {
	Config  aggConfig   `json:"config"`
	Kernels []aggKernel `json:"kernels"`
	Speedup float64     `json:"kernel_speedup"`
	Cells   []aggCell   `json:"cells"`
}

// aggWorkload builds the experiment's query set: unrestricted
// group-bys at fine levels with mixed aggregates. Unlike the paper's
// predicate-heavy Q1–Q9 (where most tuples exit at the predicate test
// and the aggregation table is barely touched), every scanned tuple
// here reaches the fold — the component this experiment measures — and
// the group counts are large enough that aggregation state, not
// required lookup/buffer state, dominates the memory peak.
func aggWorkload(schema *star.Schema) ([]*query.Query, error) {
	specs := []struct {
		name   string
		levels []int
		agg    query.Agg
	}{
		{"G1", []int{0, 1, 1, 1}, query.Sum},
		{"G2", []int{1, 0, 1, 1}, query.Avg},
		{"G3", []int{1, 1, 0, 1}, query.Count},
		{"G4", []int{0, 0, 2, 1}, query.Sum},
		{"G5", []int{1, 1, 1, 0}, query.Max},
	}
	queries := make([]*query.Query, len(specs))
	for i, s := range specs {
		q, err := query.New(s.name, schema, s.levels, nil)
		if err != nil {
			return nil, err
		}
		q.Agg = s.agg
		queries[i] = q
	}
	return queries, nil
}

// runAggCell runs one shared-scan cell and compares it to want (or
// fills want on the baseline cell).
func runAggCell(db *star.Database, queries []*query.Query, repr string, workers int, budget int64, want *[]*exec.Result) (aggCell, error) {
	cell := aggCell{Repr: repr, Workers: workers, BudgetBytes: budget}
	broker := mem.New(budget)
	env := exec.NewEnv(db)
	env.Mem = broker
	env.Parallelism = workers
	env.NoPackedKeys = repr == "bytes"

	var st exec.Stats
	start := time.Now()
	results, err := exec.SharedScanHash(env, db.Base(), queries, &st)
	if err != nil {
		return cell, err
	}
	cell.WallMS = float64(time.Since(start).Microseconds()) / 1e3
	cell.TuplesAgg = st.TuplesAgg
	cell.PackedFolds = st.PackedFolds
	cell.SpillBytes = st.SpillBytes
	bs := broker.Stats()
	cell.PeakBytes = bs.Peak
	cell.WithinBudget = budget == 0 || bs.Peak <= budget
	if bs.Used != 0 {
		return cell, fmt.Errorf("agg: %s workers=%d budget=%d: broker not drained (%d bytes held)", repr, workers, budget, bs.Used)
	}

	if *want == nil {
		*want = results
		cell.Identical = true
		return cell, nil
	}
	cell.Identical = true
	for i := range results {
		if !results[i].Equal((*want)[i]) {
			cell.Identical = false
		}
	}
	return cell, nil
}

// runAgg builds (or reuses) the benchmark database, runs the kernel
// microbenchmark and the equivalence sweep, enforces the gates, and
// optionally writes the JSON report.
func runAgg(w io.Writer, dir string, scale float64, jsonPath string) error {
	cfg := aggConfig{
		Scale:         scale,
		KernelPasses:  20,
		Workers:       []int{1, 2, 4},
		TightDivisor:  8,
		MinSpeedup:    2.0,
		MaxAllocsPass: 1,
	}

	if _, err := os.Stat(dir); os.IsNotExist(err) {
		start := time.Now()
		db, err := datagen.Build(dir, datagen.PaperSpec(scale))
		if err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "built database in %s\n", time.Since(start).Round(time.Millisecond))
	}
	db, err := star.OpenWith(dir, storage.PoolOpts{Frames: 4096})
	if err != nil {
		return err
	}
	defer db.Close()
	queries, err := aggWorkload(db.Schema)
	if err != nil {
		return err
	}
	for _, q := range queries {
		cfg.Queries = append(cfg.Queries, fmt.Sprintf("%s=%s %s", q.Name, q.GroupByName(), q.Agg))
	}

	rep := aggReport{Config: cfg}

	// Part 1: the isolated fold-kernel microbenchmark.
	fmt.Fprintf(w, "agg: scale %g, %d queries, %d kernel passes\n", scale, len(queries), cfg.KernelPasses)
	var tps [2]float64
	for i, repr := range []string{"packed", "bytes"} {
		env := exec.NewEnv(db)
		env.NoPackedKeys = repr == "bytes"
		r, err := exec.FoldKernelBench(env, db.Base(), queries, cfg.KernelPasses)
		if err != nil {
			return err
		}
		if (repr == "packed") != r.Packed {
			return fmt.Errorf("agg: %s kernel ran packed=%v", repr, r.Packed)
		}
		k := aggKernel{
			Repr:          repr,
			Passes:        r.Passes,
			Tuples:        r.Tuples,
			Folds:         r.Folds,
			TuplesPerSec:  r.TuplesPerSec,
			AllocsPerPass: r.AllocsPerPass,
			WallMS:        float64(r.Nanos) / 1e6,
		}
		rep.Kernels = append(rep.Kernels, k)
		tps[i] = r.TuplesPerSec
		fmt.Fprintf(w, "  kernel %-6s %12.0f tuples/s  %8.2f ms  %6.2f allocs/pass\n",
			repr, k.TuplesPerSec, k.WallMS, k.AllocsPerPass)
	}
	rep.Speedup = tps[0] / tps[1]
	fmt.Fprintf(w, "  kernel speedup %.2fx (packed vs bytes)\n", rep.Speedup)

	// Part 2: the equivalence sweep. Probe the ungoverned peak first to
	// size the tight budget, then sweep representation x workers x
	// budget against the serial byte-key baseline.
	var want []*exec.Result
	probe, err := runAggCell(db, queries, "bytes", 1, 0, &want)
	if err != nil {
		return err
	}
	rep.Cells = append(rep.Cells, probe)
	// The tight budget sits an order of magnitude under the working set
	// but above the spill machinery's required-state floor: each table
	// pre-reserves one partition page plus the two-page merge floor at
	// construction (spillFloorBytes in spill.go) so a spill under
	// saturation never overdrafts — but those reservations must fit the
	// budget for peak <= budget to be satisfiable. Four pages per
	// (worker, query) table bounds the summed floors.
	maxWorkers := cfg.Workers[len(cfg.Workers)-1]
	cfg.FloorBytes = int64(maxWorkers*len(queries)) * 4 * storage.PageSize
	rep.Config = cfg
	tight := probe.PeakBytes/cfg.TightDivisor + cfg.FloorBytes
	budgets := []int64{0, tight}
	fmt.Fprintf(w, "  sweep: ungoverned peak %d KiB, tight budget %d KiB\n", probe.PeakBytes>>10, tight>>10)
	fmt.Fprintf(w, "  %-6s %7s %10s %10s %12s %10s %8s %5s\n",
		"repr", "workers", "budgetKiB", "ms", "packedfolds", "spillKiB", "peakKiB", "ok")
	for _, repr := range []string{"packed", "bytes"} {
		for _, workers := range cfg.Workers {
			for _, budget := range budgets {
				cell, err := runAggCell(db, queries, repr, workers, budget, &want)
				if err != nil {
					return err
				}
				rep.Cells = append(rep.Cells, cell)
				ok := "yes"
				if !cell.Identical || !cell.WithinBudget {
					ok = "NO"
				}
				fmt.Fprintf(w, "  %-6s %7d %10d %10.2f %12d %10d %8d %5s\n",
					cell.Repr, cell.Workers, cell.BudgetBytes>>10, cell.WallMS,
					cell.PackedFolds, cell.SpillBytes>>10, cell.PeakBytes>>10, ok)
			}
		}
	}

	// Gates.
	if rep.Speedup < cfg.MinSpeedup {
		return fmt.Errorf("agg: kernel speedup %.2fx below %.1fx", rep.Speedup, cfg.MinSpeedup)
	}
	if a := rep.Kernels[0].AllocsPerPass; a >= cfg.MaxAllocsPass {
		return fmt.Errorf("agg: packed kernel allocates %.2f objects per pass, want < %.0f", a, cfg.MaxAllocsPass)
	}
	spilled := false
	for _, c := range rep.Cells {
		if !c.Identical {
			return fmt.Errorf("agg: %s workers=%d budget=%d: results differ from baseline", c.Repr, c.Workers, c.BudgetBytes)
		}
		if !c.WithinBudget {
			return fmt.Errorf("agg: %s workers=%d: peak %d exceeds budget %d", c.Repr, c.Workers, c.PeakBytes, c.BudgetBytes)
		}
		if c.Repr == "packed" && c.BudgetBytes > 0 && c.SpillBytes > 0 {
			spilled = true
		}
		if c.Repr == "packed" && c.PackedFolds != c.TuplesAgg {
			return fmt.Errorf("agg: packed workers=%d budget=%d: %d of %d folds took the packed path",
				c.Workers, c.BudgetBytes, c.PackedFolds, c.TuplesAgg)
		}
		if c.Repr == "bytes" && c.PackedFolds != 0 {
			return fmt.Errorf("agg: bytes cell counted %d packed folds", c.PackedFolds)
		}
	}
	if !spilled {
		return fmt.Errorf("agg: no tight-budget packed cell spilled; the sweep did not exercise the spill path")
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}

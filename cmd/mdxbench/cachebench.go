package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"mdxopt"
	"mdxopt/internal/workload"
)

// The cache experiment measures the semantic result cache: a working
// set of the paper's queries replays repeatedly against a deliberately
// small buffer pool, sweeping cache budget x working-set size. Each
// cell reopens the database so the cache, broker and counters are
// per-cell, runs one cold pass (empty cache) and several warm passes,
// and compares their page reads. With the cache off every pass pays
// the same I/O (the pool is too small to retain the views); with a
// budget that fits the working set the warm passes are answered by
// rollup from cached results and read no pages at all. An undersized
// budget sits in between: eviction churns the working set and only
// part of each pass is served. The point of the sweep: warm passes on
// a fitting cache do >= 5x fewer reads than cold, and the cache's
// memory stays inside the broker's budget in every cell.

type cacheConfig struct {
	Scale        float64 `json:"scale"`
	PoolFrames   int     `json:"pool_frames"`
	MemoryBudget int64   `json:"memory_budget_bytes"` // broker budget per cell
	Budgets      []int64 `json:"cache_budgets_bytes"` // 0 = cache off
	WorkingSets  []int   `json:"working_set_queries"`
	WarmPasses   int     `json:"warm_passes"`
}

// cacheCell is one (cache budget, working set) measurement.
type cacheCell struct {
	CacheBudget int64 `json:"cache_budget_bytes"` // 0 = cache off
	WorkingSet  int   `json:"working_set_queries"`

	ColdReads int64   `json:"cold_page_reads"`          // first pass, empty cache
	WarmReads float64 `json:"warm_page_reads_per_pass"` // mean over warm passes
	ColdMS    float64 `json:"cold_ms"`
	WarmMS    float64 `json:"warm_ms_per_pass"`

	Hits       int64 `json:"cache_hits"`
	Misses     int64 `json:"cache_misses"`
	Evictions  int64 `json:"cache_evictions"`
	Inserts    int64 `json:"cache_inserts"`
	CacheBytes int64 `json:"cache_bytes"`
	PeakBytes  int64 `json:"peak_bytes"` // broker high-water mark

	// FitsAll is true when the budget held the whole working set
	// (nothing evicted or rejected); those cells must show warm passes
	// with >= 5x fewer page reads than cold. WithinBudget is the
	// broker check, required in every cell.
	FitsAll      bool `json:"fits_working_set"`
	WithinBudget bool `json:"peak_within_budget"`
}

type cacheReport struct {
	Config cacheConfig `json:"config"`
	Cells  []cacheCell `json:"cells"`
}

// cachePool returns the paper's workload in a stable order so a
// working set of n is a deterministic prefix.
func cachePool() ([]string, map[string]string) {
	srcs := workload.MDX()
	names := make([]string, 0, len(srcs))
	for name := range srcs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, srcs
}

// cachePass runs one sequential pass over the working set and returns
// its page reads and wall time.
func cachePass(db *mdxopt.DB, names []string, srcs map[string]string) (int64, time.Duration, error) {
	start := time.Now()
	var reads int64
	for _, name := range names {
		a, err := db.Query(srcs[name])
		if err != nil {
			return 0, 0, fmt.Errorf("%s: %w", name, err)
		}
		reads += a.Stats.PageReads
	}
	return reads, time.Since(start), nil
}

// runCache builds (or reuses) the benchmark database, sweeps cache
// budget x working-set size, prints the grid, validates the cells and
// optionally writes the JSON report.
func runCache(w io.Writer, dir string, scale float64, jsonPath string) error {
	cfg := cacheConfig{
		Scale:        scale,
		PoolFrames:   32,
		MemoryBudget: 8 << 20,
		// Off, an undersized budget that forces eviction, and one that
		// holds the whole working set.
		Budgets:     []int64{0, 4 << 10, 4 << 20},
		WorkingSets: []int{3, 6, 9},
		WarmPasses:  4,
	}

	if _, err := os.Stat(dir); os.IsNotExist(err) {
		start := time.Now()
		db, err := mdxopt.CreateSample(dir, scale)
		if err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "built database in %s\n", time.Since(start).Round(time.Millisecond))
	}

	allNames, srcs := cachePool()
	rep := cacheReport{Config: cfg}
	fmt.Fprintf(w, "cache: scale %g, %d-frame pool, %d warm passes\n",
		cfg.Scale, cfg.PoolFrames, cfg.WarmPasses)
	fmt.Fprintf(w, "  %10s %8s %10s %10s %8s %8s %8s %8s %6s\n",
		"cache", "queries", "coldReads", "warmReads", "hits", "misses", "evict", "peakKiB", "ok")

	for _, budget := range cfg.Budgets {
		for _, n := range cfg.WorkingSets {
			if n > len(allNames) {
				return fmt.Errorf("cache: working set %d exceeds the %d-query pool", n, len(allNames))
			}
			names := allNames[:n]
			db, err := mdxopt.OpenWith(dir, mdxopt.OpenOptions{
				PoolFrames:        cfg.PoolFrames,
				MemoryBudget:      cfg.MemoryBudget,
				ResultCacheBudget: budget,
			})
			if err != nil {
				return err
			}
			coldReads, coldWall, err := cachePass(db, names, srcs)
			if err != nil {
				db.Close()
				return err
			}
			var warmReads int64
			var warmWall time.Duration
			for p := 0; p < cfg.WarmPasses; p++ {
				r, wl, err := cachePass(db, names, srcs)
				if err != nil {
					db.Close()
					return err
				}
				warmReads += r
				warmWall += wl
			}
			cs := db.ResultCacheStats()
			ms := db.MemoryStats()
			if err := db.Close(); err != nil {
				return err
			}
			cell := cacheCell{
				CacheBudget:  budget,
				WorkingSet:   n,
				ColdReads:    coldReads,
				WarmReads:    float64(warmReads) / float64(cfg.WarmPasses),
				ColdMS:       float64(coldWall.Microseconds()) / 1e3,
				WarmMS:       float64(warmWall.Microseconds()) / 1e3 / float64(cfg.WarmPasses),
				Hits:         cs.Hits,
				Misses:       cs.Misses,
				Evictions:    cs.Evictions,
				Inserts:      cs.Inserts,
				CacheBytes:   cs.Bytes,
				PeakBytes:    ms.Peak,
				FitsAll:      budget > 0 && cs.Evictions == 0 && cs.Rejected == 0,
				WithinBudget: ms.Peak <= cfg.MemoryBudget,
			}
			rep.Cells = append(rep.Cells, cell)
			bs := "off"
			if budget > 0 {
				bs = fmt.Sprintf("%dKiB", budget>>10)
			}
			ok := "yes"
			if !cell.WithinBudget {
				ok = "NO"
			}
			fmt.Fprintf(w, "  %10s %8d %10d %10.1f %8d %8d %8d %8d %6s\n",
				bs, n, cell.ColdReads, cell.WarmReads,
				cell.Hits, cell.Misses, cell.Evictions, cell.PeakBytes>>10, ok)
		}
	}

	for _, c := range rep.Cells {
		if !c.WithinBudget {
			return fmt.Errorf("cache: budget %d set %d: peak %d exceeds the broker budget %d",
				c.CacheBudget, c.WorkingSet, c.PeakBytes, cfg.MemoryBudget)
		}
		if c.CacheBudget == 0 && c.Hits != 0 {
			return fmt.Errorf("cache: set %d: %d hits with the cache off", c.WorkingSet, c.Hits)
		}
		if c.FitsAll && c.ColdReads > 0 && c.WarmReads*5 > float64(c.ColdReads) {
			return fmt.Errorf("cache: budget %d set %d: warm passes read %.1f pages vs %d cold (want >= 5x fewer)",
				c.CacheBudget, c.WorkingSet, c.WarmReads, c.ColdReads)
		}
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"mdxopt/internal/core"
	"mdxopt/internal/datagen"
	"mdxopt/internal/exec"
	"mdxopt/internal/mdx"
	"mdxopt/internal/mem"
	"mdxopt/internal/plan"
	"mdxopt/internal/star"
	"mdxopt/internal/storage"
)

// The dag experiment measures the task-graph executor: one expression
// whose component queries plan into a controlled number of classes runs
// at increasing ExecWorkers, cold each rep, under a memory budget with
// per-node admission gating. Class counts are controlled by pinning each
// component query to a distinct materialized view: the variant
// cross-product {A',A''} x {B',B''} x {C',C''} lands exactly on the
// sample database's eight group-bys, and TPLO (local optima, merge
// coincidences only) keeps each query on its own view instead of
// re-basing them onto one shared scan. As in the scan experiment, every
// physical view-heap read carries a fixed simulated latency — the
// interesting quantity is how well independent class passes overlap
// each other's I/O and CPU, not how fast the host's page cache is. The
// latency is sized at a random-I/O ballpark (2ms) rather than the scan
// experiment's sequential-page figure so it dwarfs the host's sleep
// granularity; with sub-millisecond sleeps, timer coalescing across
// concurrent classes distorts the ratios. The
// pool is sharded (a single-shard pool holds its one mutex across the
// physical read, serializing all I/O) and readahead is off, so
// inter-class concurrency is the only latency-hiding mechanism under
// test — intra-scan readahead is the scan experiment's subject. The
// point of the sweep: wall-clock time drops with workers while results
// stay byte-identical and the broker's peak stays within the budget.

type dagConfig struct {
	Scale       float64 `json:"scale"`
	Workers     []int   `json:"exec_workers"`
	PoolFrames  int     `json:"pool_frames"`
	PoolShards  int     `json:"pool_shards"`
	BudgetBytes int64   `json:"memory_budget_bytes"`
	LatencyUS   int     `json:"simulated_read_latency_us"`
	Reps        int     `json:"reps"`
	Algorithm   string  `json:"algorithm"`
}

// dagCell is one (workload, workers) measurement.
type dagCell struct {
	Workload     string  `json:"workload"`
	Classes      int     `json:"classes"`
	DAGNodes     int     `json:"dag_nodes"`
	Workers      int     `json:"exec_workers"`
	ParallelPeak int     `json:"dag_parallel_peak"`
	WallMS       float64 `json:"wall_ms"`    // mean per rep
	Speedup      float64 `json:"speedup"`    // vs the workload's workers=1 cell
	PagesRead    int64   `json:"pages_read"` // physical reads in the final rep (cold-start sanity)
	PeakBytes    int64   `json:"peak_bytes"`
	WithinBudget bool    `json:"peak_within_budget"`
	Drained      bool    `json:"drained_to_zero"`
}

type dagReport struct {
	Config dagConfig `json:"config"`
	Cells  []dagCell `json:"cells"`
}

type dagWorkload struct {
	Name string
	Src  string
}

// dagWorkloads builds expressions denoting 1, 2, 4 and 8 component
// queries whose group-bys exactly match distinct materialized views.
func dagWorkloads() []dagWorkload {
	return []dagWorkload{
		{"classes1", `{A'.MEMBERS} on COLUMNS {B'.MEMBERS} on ROWS {C'.MEMBERS} on PAGES CONTEXT ABCD`},
		{"classes2", `{A'.MEMBERS} on COLUMNS {B'.MEMBERS, B''.MEMBERS} on ROWS {C'.MEMBERS} on PAGES CONTEXT ABCD`},
		{"classes4", `{A'.MEMBERS} on COLUMNS {B'.MEMBERS, B''.MEMBERS} on ROWS {C'.MEMBERS, C''.MEMBERS} on PAGES CONTEXT ABCD`},
		{"classes8", `{A'.MEMBERS, A''.MEMBERS} on COLUMNS {B'.MEMBERS, B''.MEMBERS} on ROWS {C'.MEMBERS, C''.MEMBERS} on PAGES CONTEXT ABCD`},
	}
}

// runDagCell opens the database, installs the view-heap read latency,
// and runs the workload's plan reps times cold at the given worker
// count, verifying results against want (or filling it at workers=1).
func runDagCell(dir string, cfg dagConfig, wl dagWorkload, workers int, want *[]*exec.Result) (dagCell, error) {
	cell := dagCell{Workload: wl.Name, Workers: workers}
	db, err := star.OpenWith(dir, storage.PoolOpts{Frames: cfg.PoolFrames, Shards: cfg.PoolShards})
	if err != nil {
		return cell, err
	}
	defer db.Close()

	queries, err := mdx.ParseAndTranslate(db.Schema, wl.Src)
	if err != nil {
		return cell, err
	}
	est := plan.NewEstimator(db)
	g, err := core.Optimize(est, queries, core.Algorithm(cfg.Algorithm))
	if err != nil {
		return cell, err
	}
	cell.Classes = len(g.Classes)

	// Charge every physical view-heap read the simulated latency;
	// dimension tables (a handful of pages, hoisted into shared build
	// nodes) stay fast so the measurement isolates the class passes.
	latency := time.Duration(cfg.LatencyUS) * time.Microsecond
	for _, v := range db.Views {
		v.Heap.File().Disk().SetFault(func(op string, page uint32) error {
			if op == "read" {
				time.Sleep(latency)
			}
			return nil
		})
		defer v.Heap.File().Disk().SetFault(nil)
	}

	broker := mem.New(cfg.BudgetBytes)
	env := exec.NewEnv(db)
	env.Mem = broker
	opts := core.ExecOptions{
		Workers: workers,
		Est:     est,
		Gate: func(ctx context.Context, cost int64) (func(), error) {
			return broker.Admit(ctx, cost)
		},
	}

	var wall time.Duration
	for rep := -1; rep < cfg.Reps; rep++ { // rep -1 is the warm-up
		if err := db.ColdReset(); err != nil {
			return cell, err
		}
		var st exec.Stats
		start := time.Now()
		ex, err := core.Run(env, g, queries, &st, opts)
		if err != nil {
			return cell, err
		}
		elapsed := time.Since(start)
		if *want == nil {
			*want = ex.Results
		} else {
			for i := range ex.Results {
				if !ex.Results[i].Equal((*want)[i]) {
					return cell, fmt.Errorf("%s workers=%d: query %s result differs from serial baseline",
						wl.Name, workers, queries[i].Name)
				}
			}
		}
		cell.DAGNodes = ex.DAGNodes
		if ex.DAGParallelPeak > cell.ParallelPeak {
			cell.ParallelPeak = ex.DAGParallelPeak
		}
		cell.PagesRead = st.IO.SeqReads + st.IO.RandReads
		if rep < 0 {
			continue
		}
		wall += elapsed
	}
	bs := broker.Stats()
	mean := wall / time.Duration(cfg.Reps)
	cell.WallMS = float64(mean.Microseconds()) / 1e3
	cell.PeakBytes = bs.Peak
	cell.WithinBudget = bs.Peak <= cfg.BudgetBytes
	cell.Drained = bs.Used == 0
	return cell, nil
}

// runDag builds (or reuses) the benchmark database, sweeps workload x
// ExecWorkers, prints the grid, and optionally writes the JSON report.
func runDag(w io.Writer, dir string, scale float64, jsonPath string) error {
	cfg := dagConfig{
		Scale:       scale,
		Workers:     []int{1, 2, 4, 8},
		PoolFrames:  4096,
		PoolShards:  64,
		BudgetBytes: 256 << 20,
		LatencyUS:   2000,
		Reps:        3,
		Algorithm:   "TPLO",
	}

	if _, err := os.Stat(dir); os.IsNotExist(err) {
		start := time.Now()
		db, err := datagen.Build(dir, datagen.PaperSpec(scale))
		if err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "built database in %s\n", time.Since(start).Round(time.Millisecond))
	}

	rep := dagReport{Config: cfg}
	fmt.Fprintf(w, "dag: scale %g, %d-frame pool, %d MiB budget, %dus/page, %s plans\n",
		cfg.Scale, cfg.PoolFrames, cfg.BudgetBytes>>20, cfg.LatencyUS, cfg.Algorithm)
	fmt.Fprintf(w, "  %10s %8s %6s %8s %6s %10s %8s %8s %10s %6s\n",
		"workload", "classes", "nodes", "workers", "peak", "ms/run", "speedup", "pages", "memKiB", "ok")

	for _, wl := range dagWorkloads() {
		var want []*exec.Result
		var serialMS float64
		for _, workers := range cfg.Workers {
			cell, err := runDagCell(dir, cfg, wl, workers, &want)
			if err != nil {
				return err
			}
			if workers == 1 {
				serialMS = cell.WallMS
			}
			cell.Speedup = serialMS / cell.WallMS
			rep.Cells = append(rep.Cells, cell)
			ok := "yes"
			if !cell.WithinBudget || !cell.Drained {
				ok = "NO"
			}
			fmt.Fprintf(w, "  %10s %8d %6d %8d %6d %10.2f %7.2fx %8d %10d %6s\n",
				cell.Workload, cell.Classes, cell.DAGNodes, cell.Workers,
				cell.ParallelPeak, cell.WallMS, cell.Speedup, cell.PagesRead,
				cell.PeakBytes>>10, ok)
		}
	}

	best := 0.0
	for _, c := range rep.Cells {
		if !c.WithinBudget {
			return fmt.Errorf("dag: %s workers=%d: peak %d exceeds budget", c.Workload, c.Workers, c.PeakBytes)
		}
		if !c.Drained {
			return fmt.Errorf("dag: %s workers=%d: broker not drained", c.Workload, c.Workers)
		}
		if c.Classes >= 4 && c.Workers >= 4 && c.Speedup > best {
			best = c.Speedup
		}
	}
	if best < 1.5 {
		return fmt.Errorf("dag: best speedup on a >=4-class batch at >=4 workers is %.2fx, want >= 1.5x", best)
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}

// Command mdxbench regenerates the paper's evaluation: Table 1, Tests
// 1–3 (Figures 10–12) and Tests 4–7 (Table 2), plus this repository's
// ablation studies.
//
// Usage:
//
//	mdxbench -dir ./benchdb -scale 0.1 -exp all
//	mdxbench -exp test2            # just Figure 11
//	mdxbench -exp ablations        # the ablation studies
//	mdxbench -exp serve -json BENCH_serve.json   # batched vs separate serving
//
// The database is built on first use and reused afterwards. scale 1.0 is
// the paper's 2,000,000-row configuration.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"mdxopt/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mdxbench: ")
	dir := flag.String("dir", "mdxbenchdb", "database directory (built if missing)")
	scale := flag.Float64("scale", 0.1, "scale factor (1.0 = the paper's 2M rows)")
	exp := flag.String("exp", "all", "experiment: all, table1, test1..test7, study, ablations, serve, scan, mem, cache, dag, agg, pool, idx, mut")
	jsonOut := flag.String("json", "", "write the serve/scan/mem/cache/dag/agg/pool/idx/mut experiment's report to this JSON file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the experiment) to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	// The serve, scan, mem and cache experiments open the database
	// themselves (they need deliberately sized buffer pools, memory
	// budgets and cache budgets).
	if *exp == "serve" {
		if err := runServe(os.Stdout, *dir, *scale, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *exp == "scan" {
		if err := runScan(os.Stdout, *dir, *scale, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *exp == "mem" {
		if err := runMem(os.Stdout, *dir, *scale, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *exp == "cache" {
		if err := runCache(os.Stdout, *dir, *scale, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *exp == "dag" {
		if err := runDag(os.Stdout, *dir, *scale, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *exp == "agg" {
		if err := runAgg(os.Stdout, *dir, *scale, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *exp == "pool" {
		if err := runPool(os.Stdout, *dir, *scale, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *exp == "idx" {
		if err := runIdx(os.Stdout, *dir, *scale, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *exp == "mut" {
		if err := runMut(os.Stdout, *dir, *scale, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	start := time.Now()
	r, err := experiments.Open(*dir, *scale)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	fmt.Printf("database ready in %s (%d base rows)\n\n",
		time.Since(start).Round(time.Millisecond), r.DB.Base().Rows())

	w := os.Stdout
	switch *exp {
	case "all":
		if err := r.RunAll(w); err != nil {
			log.Fatal(err)
		}
		if err := r.RunAblations(w); err != nil {
			log.Fatal(err)
		}
	case "table1":
		r.Table1().Format(w)
	case "test1", "test2", "test3":
		fns := map[string]func() (*experiments.SharedOpResult, error){
			"test1": r.Test1, "test2": r.Test2, "test3": r.Test3,
		}
		res, err := fns[*exp]()
		if err != nil {
			log.Fatal(err)
		}
		res.Format(w)
	case "test4", "test5", "test6", "test7":
		fns := map[string]func() (*experiments.AlgoResult, error){
			"test4": r.Test4, "test5": r.Test5, "test6": r.Test6, "test7": r.Test7,
		}
		res, err := fns[*exp]()
		if err != nil {
			log.Fatal(err)
		}
		res.Format(w)
	case "study":
		res, err := r.OptimizerStudy()
		if err != nil {
			log.Fatal(err)
		}
		res.Format(w)
	case "ablations":
		if err := r.RunAblations(w); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}

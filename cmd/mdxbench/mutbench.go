package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mdxopt"
	"mdxopt/internal/workload"
)

// The mut experiment measures what the snapshot-isolated catalog buys:
// query latency while maintenance (Compact of the indexed A'B'C'D view,
// which also rebuilds its three bitmap join indexes, plus Refresh) runs
// continuously. Each cell races N closed-loop query clients against the
// mutator for a fixed window under one of two concurrency regimes —
// "snapshot" (queries pin published epochs and never block) and
// "locked" (OpenOptions.SerializedMutations: the legacy reader/writer
// lock, where every Compact stalls every in-flight query). The sweep
// crosses mutation cadence (back-to-back vs a 10ms gap) with client
// counts. The gates: with maintenance running back-to-back, snapshot
// p99 query latency must beat the locked baseline by >= 5x at one
// client — the cell that isolates lock stalls, since a single reader
// sees almost no run-queue delay — and by >= 3x at every client count.
// (On a single-CPU host the multi-client snapshot p99 is floored by
// readers time-sharing the core with each other and refetching the
// replaced view's pages cold after each publish; that delay is not
// blocking and hits both modes' readers alike.) Tracked memory stays
// within the budget and the broker
// drains to zero in every cell; Compact preserves aggregates, so every
// answer in every cell must equal the quiescent reference; and after
// the snapshot-mode cells close, no replaced heap or index file may
// survive on disk.

type mutConfig struct {
	Scale      float64 `json:"scale"`
	Clients    []int   `json:"clients"`
	CadencesMS []int   `json:"mutation_cadences_ms"`
	WindowMS   int     `json:"measure_window_ms"`
	PoolFrames int     `json:"pool_frames"`
	Budget     int64   `json:"memory_budget_bytes"`
}

// mutCell is one (mode, cadence, clients) measurement.
type mutCell struct {
	Mode      string  `json:"mode"` // "snapshot" or "locked"
	CadenceMS int     `json:"mutation_cadence_ms"`
	Clients   int     `json:"clients"`
	Queries   int     `json:"queries"`
	MutOps    int64   `json:"mutation_ops"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`

	Publishes      int64 `json:"publishes"`
	ReclaimedFiles int64 `json:"reclaimed_files"`
	RetiredAtClose int   `json:"retired_at_close"` // before Close force-drains

	PeakBytes     int64 `json:"peak_bytes"`
	WithinBudget  bool  `json:"peak_within_budget"`
	DrainedToZero bool  `json:"drained_to_zero"`
	AnswersOK     bool  `json:"answers_match_reference"`
}

// mutRatio is the headline comparison at one sweep point.
type mutRatio struct {
	CadenceMS   int     `json:"mutation_cadence_ms"`
	Clients     int     `json:"clients"`
	P99LockedMS float64 `json:"p99_locked_ms"`
	P99SnapMS   float64 `json:"p99_snapshot_ms"`
	Ratio       float64 `json:"ratio"`
}

type mutReport struct {
	Config mutConfig  `json:"config"`
	Cells  []mutCell  `json:"cells"`
	Ratios []mutRatio `json:"ratios"`
}

// mutSrcs is the query mix: the paper's selective probe-regime queries,
// served from the very view (A'B'C'D and its bitmap indexes) the
// mutator is continuously replacing. Short queries keep the p99 a
// measure of maintenance interference rather than of the queries' own
// execution time.
func mutSrcs() []string {
	base := workload.MDX()
	return []string{base["Q5"], base["Q6"], base["Q7"], base["Q8"]}
}

// mutCanon serializes an answer's values deterministically (rows sorted
// by member tuple) for comparison against the quiescent reference.
func mutCanon(ans *mdxopt.Answer) string {
	var b strings.Builder
	for _, qr := range ans.Queries {
		fmt.Fprintf(&b, "%s %s\n", qr.GroupBy, qr.Aggregate)
		rows := make([]string, len(qr.Rows))
		for i, r := range qr.Rows {
			rows[i] = strings.Join(r.Members, "|") + "=" + strconv.FormatFloat(r.Value, 'g', -1, 64)
		}
		sort.Strings(rows)
		for _, r := range rows {
			b.WriteString(r)
			b.WriteString("\n")
		}
	}
	return b.String()
}

func mutOpen(dir string, cfg mutConfig, serialized bool) (*mdxopt.DB, error) {
	return mdxopt.OpenWith(dir, mdxopt.OpenOptions{
		PoolFrames:          cfg.PoolFrames,
		MemoryBudget:        cfg.Budget,
		SerializedMutations: serialized,
	})
}

// mutTarget picks the maintenance target: the indexed A'B'C'D view if
// present (Compact then also rebuilds its bitmap indexes, the costliest
// mutation), else the first materialized view.
func mutTarget(db *mdxopt.DB) ([]string, error) {
	views := db.Views()
	if len(views) < 2 {
		return nil, fmt.Errorf("mut: database has no materialized views")
	}
	for _, v := range views[1:] {
		if v.Name == "A'B'C'D" {
			return v.Levels, nil
		}
	}
	return views[1].Levels, nil
}

// runMutCell races clients closed-loop query loops against a continuous
// Refresh+Compact mutator for the configured window.
func runMutCell(dir string, cfg mutConfig, mode string, cadence time.Duration, clients int, refs map[string]string) (mutCell, error) {
	cell := mutCell{Mode: mode, CadenceMS: int(cadence / time.Millisecond), Clients: clients}
	db, err := mutOpen(dir, cfg, mode == "locked")
	if err != nil {
		return cell, err
	}
	closed := false
	defer func() {
		if !closed {
			db.Close()
		}
	}()
	target, err := mutTarget(db)
	if err != nil {
		return cell, err
	}
	srcs := mutSrcs()
	// Warm the pool and plan caches before the clock starts.
	for _, src := range srcs {
		if _, err := db.QueryWith(src, mdxopt.Options{}); err != nil {
			return cell, err
		}
	}

	stop := make(chan struct{})
	var mutErr error
	var mutOps atomic.Int64
	var mwg, rwg sync.WaitGroup
	mwg.Add(1)
	go func() {
		defer mwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Compact(target...); err != nil {
				mutErr = err
				return
			}
			if err := db.Refresh(); err != nil {
				mutErr = err
				return
			}
			mutOps.Add(2)
			if cadence > 0 {
				time.Sleep(cadence)
			}
		}
	}()

	deadline := time.Now().Add(time.Duration(cfg.WindowMS) * time.Millisecond)
	latencies := make([][]time.Duration, clients)
	mismatches := make([]int, clients)
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		rwg.Add(1)
		go func(c int) {
			defer rwg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				src := srcs[(c+i)%len(srcs)]
				t0 := time.Now()
				ans, err := db.QueryWith(src, mdxopt.Options{})
				if err != nil {
					errs <- fmt.Errorf("mut %s client %d: %w", mode, c, err)
					return
				}
				latencies[c] = append(latencies[c], time.Since(t0))
				if mutCanon(ans) != refs[src] {
					mismatches[c]++
				}
			}
		}(c)
	}
	// Readers own the deadline; stop the mutator once they all return.
	rwg.Wait()
	close(stop)
	mwg.Wait()
	select {
	case err := <-errs:
		return cell, err
	default:
	}
	if mutErr != nil {
		return cell, mutErr
	}

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	if len(all) == 0 {
		return cell, fmt.Errorf("mut %s cadence=%v clients=%d: no queries completed", mode, cadence, clients)
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return float64(all[i].Microseconds()) / 1e3
	}
	cell.Queries = len(all)
	cell.MutOps = mutOps.Load()
	cell.P50MS = pct(0.50)
	cell.P99MS = pct(0.99)
	cell.AnswersOK = true
	for _, m := range mismatches {
		if m > 0 {
			cell.AnswersOK = false
		}
	}
	ms := db.MemoryStats()
	cell.PeakBytes = ms.Peak
	cell.WithinBudget = cfg.Budget == 0 || ms.Peak <= cfg.Budget
	cell.DrainedToZero = ms.Used == 0
	mnt := db.MaintenanceStats()
	cell.Publishes = mnt.Publishes
	cell.ReclaimedFiles = mnt.ReclaimedFiles
	cell.RetiredAtClose = mnt.RetiredFiles
	closed = true
	return cell, db.Close()
}

// mutCheckNoLeaks verifies every heap/index file on disk is referenced
// by the manifest after the last Close force-drained the reclaimer.
func mutCheckNoLeaks(dir string) error {
	blob, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return err
	}
	var meta struct {
		DimTables []string `json:"dim_tables"`
		Views     []struct {
			File    string            `json:"file"`
			Indexes map[string]string `json:"indexes"`
		} `json:"views"`
	}
	if err := json.Unmarshal(blob, &meta); err != nil {
		return err
	}
	referenced := map[string]bool{}
	for _, f := range meta.DimTables {
		referenced[f] = true
	}
	for _, v := range meta.Views {
		referenced[v.File] = true
		for _, f := range v.Indexes {
			referenced[f] = true
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".heap") && !strings.HasSuffix(name, ".bmx") {
			continue
		}
		if !referenced[name] {
			return fmt.Errorf("mut: leaked file %s (on disk, not in manifest)", name)
		}
	}
	return nil
}

// runMut builds (or reuses) the benchmark database, sweeps mode x
// cadence x clients, prints the grid, enforces the gates, and optionally
// writes the JSON report.
func runMut(w io.Writer, dir string, scale float64, jsonPath string) error {
	// The pool is sized to hold the working set: the cells compare
	// lock-induced stalls, not page-eviction churn from Compact's scan
	// traffic (the scan experiment covers pool pressure).
	cfg := mutConfig{
		Scale:      scale,
		Clients:    []int{1, 4, 8},
		CadencesMS: []int{0, 10},
		WindowMS:   600,
		PoolFrames: 8192,
		Budget:     64 << 20,
	}

	if _, err := os.Stat(dir); os.IsNotExist(err) {
		start := time.Now()
		db, err := mdxopt.CreateSample(dir, scale)
		if err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "built database in %s\n", time.Since(start).Round(time.Millisecond))
	}

	// Quiescent reference answers: Compact and Refresh preserve
	// aggregates, so every answer in every cell must match these.
	ref, err := mutOpen(dir, cfg, false)
	if err != nil {
		return err
	}
	refs := map[string]string{}
	for _, src := range mutSrcs() {
		ans, err := ref.QueryWith(src, mdxopt.Options{})
		if err != nil {
			ref.Close()
			return err
		}
		refs[src] = mutCanon(ans)
	}
	if err := ref.Close(); err != nil {
		return err
	}

	rep := mutReport{Config: cfg}
	fmt.Fprintf(w, "mut: scale %g, %dms windows, budget %dMiB, continuous Compact(A'B'C'D)+Refresh\n",
		cfg.Scale, cfg.WindowMS, cfg.Budget>>20)
	fmt.Fprintf(w, "  %-9s %9s %8s %8s %8s %9s %9s %7s %5s\n",
		"mode", "cadence", "clients", "queries", "mutops", "p50 ms", "p99 ms", "peakKiB", "ok")
	for _, cadMS := range cfg.CadencesMS {
		cadence := time.Duration(cadMS) * time.Millisecond
		for _, clients := range cfg.Clients {
			var p99 [2]float64
			for mi, mode := range []string{"locked", "snapshot"} {
				cell, err := runMutCell(dir, cfg, mode, cadence, clients, refs)
				if err != nil {
					return err
				}
				rep.Cells = append(rep.Cells, cell)
				p99[mi] = cell.P99MS
				ok := "yes"
				if !cell.WithinBudget || !cell.DrainedToZero || !cell.AnswersOK {
					ok = "NO"
				}
				fmt.Fprintf(w, "  %-9s %7dms %8d %8d %8d %9.2f %9.2f %7d %5s\n",
					mode, cadMS, clients, cell.Queries, cell.MutOps, cell.P50MS, cell.P99MS, cell.PeakBytes>>10, ok)
			}
			ratio := 0.0
			if p99[1] > 0 {
				ratio = p99[0] / p99[1]
			}
			rep.Ratios = append(rep.Ratios, mutRatio{
				CadenceMS: cadMS, Clients: clients,
				P99LockedMS: p99[0], P99SnapMS: p99[1], Ratio: ratio,
			})
			fmt.Fprintf(w, "  %-9s %7dms %8d  p99 locked/snapshot = %.1fx\n", "ratio", cadMS, clients, ratio)
		}
	}
	if err := mutCheckNoLeaks(dir); err != nil {
		return err
	}
	fmt.Fprintf(w, "no leaked files after close\n")

	for _, c := range rep.Cells {
		if !c.WithinBudget {
			return fmt.Errorf("mut: %s cadence=%dms clients=%d: peak %d exceeds budget %d", c.Mode, c.CadenceMS, c.Clients, c.PeakBytes, cfg.Budget)
		}
		if !c.DrainedToZero {
			return fmt.Errorf("mut: %s cadence=%dms clients=%d: broker not drained", c.Mode, c.CadenceMS, c.Clients)
		}
		if !c.AnswersOK {
			return fmt.Errorf("mut: %s cadence=%dms clients=%d: answers diverged from quiescent reference", c.Mode, c.CadenceMS, c.Clients)
		}
	}
	for _, r := range rep.Ratios {
		if r.CadenceMS != 0 {
			continue
		}
		want := 3.0
		if r.Clients == 1 {
			want = 5.0
		}
		if r.Ratio < want {
			return fmt.Errorf("mut: clients=%d: p99 improvement %.1fx under continuous maintenance, want >= %gx (locked %.2fms, snapshot %.2fms)",
				r.Clients, r.Ratio, want, r.P99LockedMS, r.P99SnapMS)
		}
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"mdxopt/internal/core"
	"mdxopt/internal/datagen"
	"mdxopt/internal/exec"
	"mdxopt/internal/mdx"
	"mdxopt/internal/mem"
	"mdxopt/internal/plan"
	"mdxopt/internal/star"
	"mdxopt/internal/storage"
)

// The pool experiment measures what the unified morsel-driven worker
// pool buys over the legacy static pre-split. Each cell runs a pinned-
// view workload (the dag experiment's expressions) at a fixed pool
// width, once with Env.StaticPartition (each scan carved into one
// contiguous range per worker up front) and once morsel-driven (workers
// claim small page ranges from a shared cursor). Two latency shapes per
// view heap: "uniform" charges every physical read the same cost —
// the shapes where static partitioning is already balanced — and
// "tailskew" makes only the trailing quarter of each heap slow, the
// adversarial shape where a static split parks one worker on the entire
// slow tail while its siblings finish early and idle. Work-stealing
// spreads that tail across the whole width, so the morsel wall should
// beat static by at least the straggler margin (>= 1.3x) at equal
// worker count; results stay byte-identical in every cell and the
// broker peak must stay within the budget now that the estimator
// prices one aggregation-table copy per scan worker.
//
// Reading multi-class cells: the static mode is the legacy behavior and
// its scan goroutines are NOT pool-bounded — a C-class batch at W
// workers runs up to C x W concurrent scanners, so on latency-uniform
// shapes it can beat the morsel pool simply by oversubscribing beyond
// the configured width (goroutines sleeping in injected I/O stack
// freely). The equal-concurrency comparison is the single-class
// workload, where static's fan-out equals the pool width — and there
// the skewed shape shows the straggler win the morsel cursor exists
// for. The win requirement is therefore asserted over skewed cells at
// >= 4 workers, where both modes hold the same number of slots.

type poolConfig struct {
	Scale        float64 `json:"scale"`
	Workers      []int   `json:"workers"`
	PoolFrames   int     `json:"pool_frames"`
	PoolShards   int     `json:"pool_shards"`
	BudgetBytes  int64   `json:"memory_budget_bytes"`
	LatencyUS    int     `json:"slow_read_latency_us"`
	TailFraction float64 `json:"tail_fraction"`
	MorselPages  int     `json:"morsel_pages"`
	Reps         int     `json:"reps"`
	Algorithm    string  `json:"algorithm"`
}

// poolCell is one (workload, shape, mode, workers) measurement.
type poolCell struct {
	Workload     string  `json:"workload"`
	Shape        string  `json:"shape"` // "uniform" | "tailskew"
	Mode         string  `json:"mode"`  // "static" | "morsel"
	Classes      int     `json:"classes"`
	DAGNodes     int     `json:"dag_nodes"`
	Workers      int     `json:"workers"`
	Effective    int     `json:"effective_workers"`
	WorkerPeak   int     `json:"worker_peak"`
	WallMS       float64 `json:"wall_ms"`       // mean per rep
	Speedup      float64 `json:"speedup"`       // vs same shape+mode at workers=1
	StragglerWin float64 `json:"straggler_win"` // static wall / morsel wall (morsel cells)
	PeakBytes    int64   `json:"peak_bytes"`
	WithinBudget bool    `json:"peak_within_budget"`
	Drained      bool    `json:"drained_to_zero"`
}

type poolReport struct {
	Config poolConfig `json:"config"`
	Cells  []poolCell `json:"cells"`
}

// runPoolCell opens the database cold, installs the shape's per-page
// latency on every view heap, and runs the workload reps times at the
// given width and scan mode, verifying results against want (or filling
// it on the first cell of the workload).
func runPoolCell(dir string, cfg poolConfig, wl dagWorkload, shape, mode string, workers int, want *[]*exec.Result) (poolCell, error) {
	cell := poolCell{Workload: wl.Name, Shape: shape, Mode: mode, Workers: workers}
	db, err := star.OpenWith(dir, storage.PoolOpts{Frames: cfg.PoolFrames, Shards: cfg.PoolShards})
	if err != nil {
		return cell, err
	}
	defer db.Close()

	queries, err := mdx.ParseAndTranslate(db.Schema, wl.Src)
	if err != nil {
		return cell, err
	}
	est := plan.NewEstimator(db)
	est.Workers = workers
	g, err := core.Optimize(est, queries, core.Algorithm(cfg.Algorithm))
	if err != nil {
		return cell, err
	}
	cell.Classes = len(g.Classes)

	// Latency shape. Uniform charges every physical view-heap read;
	// tailskew charges only the trailing TailFraction of each heap's
	// pages — the contiguous slow run a static pre-split hands whole to
	// its last worker.
	latency := time.Duration(cfg.LatencyUS) * time.Microsecond
	for _, v := range db.Views {
		slowFrom := uint32(0)
		if shape == "tailskew" {
			slowFrom = uint32(float64(v.Heap.File().NumPages()) * (1 - cfg.TailFraction))
		}
		v.Heap.File().Disk().SetFault(func(op string, page uint32) error {
			if op == "read" && page >= slowFrom {
				time.Sleep(latency)
			}
			return nil
		})
		defer v.Heap.File().Disk().SetFault(nil)
	}

	broker := mem.New(cfg.BudgetBytes)
	env := exec.NewEnv(db)
	env.Mem = broker
	env.MorselPages = cfg.MorselPages
	env.StaticPartition = mode == "static"
	opts := core.ExecOptions{
		Workers: workers,
		Est:     est,
		Gate: func(ctx context.Context, cost int64) (func(), error) {
			return broker.Admit(ctx, cost)
		},
	}

	var wall time.Duration
	for rep := -1; rep < cfg.Reps; rep++ { // rep -1 is the warm-up
		if err := db.ColdReset(); err != nil {
			return cell, err
		}
		var st exec.Stats
		start := time.Now()
		ex, err := core.Run(env, g, queries, &st, opts)
		if err != nil {
			return cell, err
		}
		elapsed := time.Since(start)
		if *want == nil {
			*want = ex.Results
		} else {
			for i := range ex.Results {
				if !ex.Results[i].Equal((*want)[i]) {
					return cell, fmt.Errorf("%s %s/%s workers=%d: query %s result differs from baseline",
						wl.Name, shape, mode, workers, queries[i].Name)
				}
			}
		}
		cell.DAGNodes = ex.DAGNodes
		cell.Effective = ex.EffectiveWorkers
		if ex.WorkerPeak > cell.WorkerPeak {
			cell.WorkerPeak = ex.WorkerPeak
		}
		if rep < 0 {
			continue
		}
		wall += elapsed
	}
	bs := broker.Stats()
	mean := wall / time.Duration(cfg.Reps)
	cell.WallMS = float64(mean.Microseconds()) / 1e3
	cell.PeakBytes = bs.Peak
	cell.WithinBudget = bs.Peak <= cfg.BudgetBytes
	cell.Drained = bs.Used == 0
	return cell, nil
}

// runPool builds (or reuses) the benchmark database and sweeps
// shape x workload x workers x scan mode, printing the grid and
// optionally writing the JSON report. It fails unless the morsel mode
// beats static partitioning by >= 1.3x on some skewed cell at >= 4
// workers, and unless every cell stayed within budget and drained.
func runPool(w io.Writer, dir string, scale float64, jsonPath string) error {
	cfg := poolConfig{
		Scale:        scale,
		Workers:      []int{1, 2, 4, 8},
		PoolFrames:   4096,
		PoolShards:   64,
		BudgetBytes:  256 << 20,
		LatencyUS:    2000,
		TailFraction: 0.25,
		MorselPages:  4,
		Reps:         3,
		Algorithm:    "TPLO",
	}

	if _, err := os.Stat(dir); os.IsNotExist(err) {
		start := time.Now()
		db, err := datagen.Build(dir, datagen.PaperSpec(scale))
		if err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "built database in %s\n", time.Since(start).Round(time.Millisecond))
	}

	var workloads []dagWorkload
	for _, wl := range dagWorkloads() {
		if wl.Name == "classes1" || wl.Name == "classes4" {
			workloads = append(workloads, wl)
		}
	}

	rep := poolReport{Config: cfg}
	fmt.Fprintf(w, "pool: scale %g, %dus slow reads, tail %.0f%%, %d-page morsels, %s plans\n",
		cfg.Scale, cfg.LatencyUS, cfg.TailFraction*100, cfg.MorselPages, cfg.Algorithm)
	fmt.Fprintf(w, "  %10s %9s %7s %8s %5s %10s %8s %7s %10s %6s\n",
		"workload", "shape", "mode", "workers", "peak", "ms/run", "speedup", "win", "memKiB", "ok")

	bestWin := 0.0
	for _, wl := range workloads {
		var want []*exec.Result
		for _, shape := range []string{"uniform", "tailskew"} {
			serial := map[string]float64{}
			for _, workers := range cfg.Workers {
				var staticMS float64
				for _, mode := range []string{"static", "morsel"} {
					cell, err := runPoolCell(dir, cfg, wl, shape, mode, workers, &want)
					if err != nil {
						return err
					}
					if workers == 1 {
						serial[mode] = cell.WallMS
					}
					cell.Speedup = serial[mode] / cell.WallMS
					if mode == "static" {
						staticMS = cell.WallMS
					} else {
						cell.StragglerWin = staticMS / cell.WallMS
						if shape == "tailskew" && workers >= 4 && cell.StragglerWin > bestWin {
							bestWin = cell.StragglerWin
						}
					}
					rep.Cells = append(rep.Cells, cell)
					ok := "yes"
					if !cell.WithinBudget || !cell.Drained {
						ok = "NO"
					}
					win := "-"
					if cell.StragglerWin > 0 {
						win = fmt.Sprintf("%.2fx", cell.StragglerWin)
					}
					fmt.Fprintf(w, "  %10s %9s %7s %8d %5d %10.2f %7.2fx %7s %10d %6s\n",
						cell.Workload, cell.Shape, cell.Mode, cell.Workers, cell.WorkerPeak,
						cell.WallMS, cell.Speedup, win, cell.PeakBytes>>10, ok)
				}
			}
		}
	}

	for _, c := range rep.Cells {
		if !c.WithinBudget {
			return fmt.Errorf("pool: %s %s/%s workers=%d: peak %d exceeds budget",
				c.Workload, c.Shape, c.Mode, c.Workers, c.PeakBytes)
		}
		if !c.Drained {
			return fmt.Errorf("pool: %s %s/%s workers=%d: broker not drained",
				c.Workload, c.Shape, c.Mode, c.Workers)
		}
	}
	if bestWin < 1.3 {
		return fmt.Errorf("pool: best morsel-vs-static win on a skewed scan at >= 4 workers is %.2fx, want >= 1.3x", bestWin)
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}

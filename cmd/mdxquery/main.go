// Command mdxquery evaluates MDX expressions against an mdxopt database,
// either from the command line or interactively.
//
// Usage:
//
//	mdxquery -dir ./db [-alg GG] [-paper] [-explain] [-cold] ["MDX expression"]
//
// With no expression argument, mdxquery reads expressions from standard
// input, one per line (a trailing ';' is optional). The special inputs
// "\views" and "\dims" describe the database; "\quit" exits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"mdxopt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mdxquery: ")
	dir := flag.String("dir", "mdxdb", "database directory")
	alg := flag.String("alg", "GG", "optimization algorithm: TPLO, ETPLG, GG, Optimal")
	paper := flag.Bool("paper", false, "confine the optimizer to the paper's plan space")
	explain := flag.Bool("explain", false, "print the global plan instead of executing")
	cold := flag.Bool("cold", false, "flush caches before executing (paper's cold-cache discipline)")
	maxRows := flag.Int("rows", 20, "maximum result rows to print per query (0 = all)")
	flag.Parse()

	db, err := mdxopt.Open(*dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	opts := mdxopt.Options{
		Algorithm:      mdxopt.Algorithm(*alg),
		PaperPlanSpace: *paper,
		ColdCache:      *cold,
	}

	if flag.NArg() > 0 {
		src := strings.Join(flag.Args(), " ")
		if err := run(os.Stdout, db, src, opts, *explain, *maxRows); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("mdxopt: %d facts, %d stored group-bys. Enter MDX; \\views, \\dims, \\stale, \\refresh, \\quit.\n",
		db.Facts(), len(db.Views()))
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("mdx> ")
		if !scanner.Scan() {
			return
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\views`:
			for _, v := range db.Views() {
				fmt.Printf("  %-16s %10d rows %8d pages\n", v.Name, v.Rows, v.Pages)
			}
			continue
		case line == `\dims`:
			fmt.Printf("  dimensions: %s; measure: %s\n",
				strings.Join(db.Dimensions(), ", "), db.Measure())
			continue
		case line == `\stale`:
			stale := db.StaleViews()
			if len(stale) == 0 {
				fmt.Println("  all views fresh")
			}
			for _, name := range stale {
				fmt.Printf("  %s is stale\n", name)
			}
			continue
		case line == `\refresh`:
			if err := db.Refresh(); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Println("  views refreshed")
			}
			continue
		}
		if err := run(os.Stdout, db, line, opts, *explain, *maxRows); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}

func run(w io.Writer, db *mdxopt.DB, src string, opts mdxopt.Options, explain bool, maxRows int) error {
	if explain {
		planStr, err := db.Explain(src, opts)
		if err != nil {
			return err
		}
		fmt.Fprint(w, planStr)
		return nil
	}
	start := time.Now()
	ans, err := db.QueryWith(src, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(w, "plan:\n%s", ans.Plan)
	for _, cs := range ans.Classes {
		fmt.Fprintf(w, "  class %s [%s] %v: %d page reads, %d scanned, %d fetched, %.3f sim-s\n",
			cs.View, cs.Regime, cs.Queries, cs.PageReads, cs.TuplesScanned, cs.TuplesFetched,
			cs.SimulatedSeconds)
	}
	for _, qr := range ans.Queries {
		fmt.Fprintf(w, "%s [%s] (%s): %d groups\n",
			qr.Name, qr.GroupBy, strings.Join(qr.Columns, ", "), len(qr.Rows))
		for i, row := range qr.Rows {
			if maxRows > 0 && i >= maxRows {
				fmt.Fprintf(w, "  ... %d more\n", len(qr.Rows)-maxRows)
				break
			}
			fmt.Fprintf(w, "  (%s) = %.2f\n", strings.Join(row.Members, ", "), row.Value)
		}
	}
	fmt.Fprintf(w, "%d page reads, %d tuples scanned, %d fetched; simulated 1998 time %.3fs; wall %s\n",
		ans.Stats.PageReads, ans.Stats.TuplesScanned, ans.Stats.TuplesFetched,
		ans.Stats.SimulatedSeconds, elapsed.Round(time.Microsecond))
	return nil
}

// Command mdxgen builds the paper's synthetic test database: a
// four-dimensional star schema with three-level hierarchies, the Table 1
// set of materialized group-bys, and bitmap join indexes on the A', B'
// and C' columns of A'B'C'D.
//
// Usage:
//
//	mdxgen -dir ./db -scale 0.1
//
// scale 1.0 reproduces the paper's full 2,000,000-row configuration.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mdxopt/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mdxgen: ")
	dir := flag.String("dir", "mdxdb", "database directory to create")
	scale := flag.Float64("scale", 0.1, "scale factor (1.0 = the paper's 2M rows)")
	seed := flag.Int64("seed", 1998, "random seed")
	zipf := flag.Float64("zipf", 0, "Zipf skew parameter (>1 enables skew; 0 = uniform)")
	flag.Parse()

	if _, err := os.Stat(*dir); err == nil {
		log.Fatalf("%s already exists; remove it first", *dir)
	}

	spec := datagen.PaperSpec(*scale)
	spec.Seed = *seed
	spec.Zipf = *zipf

	fmt.Printf("building %s: %d rows, %d entities, A/B/C cards %v, D cards %v\n",
		*dir, spec.Rows, spec.Entities, spec.Cards[0], spec.Cards[3])
	start := time.Now()
	db, err := datagen.Build(*dir, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built in %s\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("%-14s %10s %8s\n", "group-by", "tuples", "pages")
	for _, v := range db.Views {
		fmt.Printf("%-14s %10d %8d\n", v.Name, v.Rows(), v.Pages())
	}
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
}

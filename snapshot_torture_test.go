package mdxopt

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// tortureSrcs are the MDX expressions the torture readers race against
// maintenance. They hit different group-bys so plans span views the
// mutator is compacting and refreshing.
var tortureSrcs = []string{
	`{A''.A1.CHILDREN} on COLUMNS {B''.B1} on ROWS CONTEXT ABCD FILTER (D'.DD1)`,
	`{A''.A1, A''.A2} on COLUMNS {B''.B2, B''.B3} on ROWS CONTEXT ABCD FILTER (D'.DD1)`,
	`{A''.MEMBERS} on COLUMNS CONTEXT ABCD FILTER (D'.DD1)`,
}

// canonAnswer serializes an Answer's result values deterministically
// (rows sorted by member tuple) so two runs against the same snapshot
// epoch can be compared byte for byte.
func canonAnswer(ans *Answer) string {
	var b strings.Builder
	for _, qr := range ans.Queries {
		fmt.Fprintf(&b, "%s %s %s\n", qr.Name, qr.GroupBy, qr.Aggregate)
		rows := make([]string, len(qr.Rows))
		for i, r := range qr.Rows {
			rows[i] = strings.Join(r.Members, "|") + "=" + strconv.FormatFloat(r.Value, 'g', -1, 64)
		}
		sort.Strings(rows)
		for _, r := range rows {
			b.WriteString(r)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// TestSnapshotTortureConcurrentMaintenance races query execution (both
// the direct path and the admission scheduler's batched path) against a
// mutator cycling loads, refreshes and compactions. Every answer must be
// byte-identical to a serial run against the published epoch the request
// pinned, at every worker width.
func TestSnapshotTortureConcurrentMaintenance(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test skipped in -short mode")
	}
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			tortureRun(t, workers)
		})
	}
}

func tortureRun(t *testing.T, workers int) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := CreateSample(dir, 0.002)
	if err != nil {
		t.Fatalf("CreateSample: %v", err)
	}
	db.EnableBatching(BatchConfig{Window: time.Millisecond, Workers: workers})

	// refs maps snapshot epoch -> MDX source -> canonical serial answer.
	// The mutator records the reference for each epoch right after
	// publishing it (it is the only mutator, so the epoch is still
	// current); readers wait for their pinned epoch's entry to appear.
	var refMu sync.Mutex
	refs := map[uint64]map[string]string{}
	record := func() error {
		entry := map[string]string{}
		var epoch uint64
		for _, src := range tortureSrcs {
			ans, err := db.QueryWith(src, Options{})
			if err != nil {
				return err
			}
			if epoch != 0 && ans.Stats.SnapshotEpoch != epoch {
				return fmt.Errorf("reference run moved from epoch %d to %d mid-recording", epoch, ans.Stats.SnapshotEpoch)
			}
			epoch = ans.Stats.SnapshotEpoch
			entry[src] = canonAnswer(ans)
		}
		refMu.Lock()
		refs[epoch] = entry
		refMu.Unlock()
		return nil
	}
	lookupRef := func(epoch uint64, src string) (string, bool) {
		refMu.Lock()
		defer refMu.Unlock()
		e, ok := refs[epoch]
		if !ok {
			return "", false
		}
		ref, ok := e[src]
		return ref, ok
	}
	if err := record(); err != nil {
		t.Fatalf("initial reference: %v", err)
	}

	cards := make([]int32, len(db.Dimensions()))
	for i := range cards {
		cards[i] = db.db.Schema.Dims[i].Card(0)
	}
	views := db.Views()

	done := make(chan struct{})
	errCh := make(chan error, workers+1)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	// Mutator: load facts, refresh, compact — recording the reference
	// answers for every epoch it publishes.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		codes := make([]int32, len(cards))
		for iter := 0; iter < 4; iter++ {
			ld := db.Load()
			for r := 0; r < 16; r++ {
				for i := range codes {
					codes[i] = int32(iter*16+r*7+i) % cards[i]
				}
				if err := ld.AddCodes(codes, float64(iter+1)); err != nil {
					fail(fmt.Errorf("AddCodes: %w", err))
					return
				}
			}
			if err := ld.Close(); err != nil {
				fail(fmt.Errorf("Loader.Close: %w", err))
				return
			}
			if err := record(); err != nil {
				fail(err)
				return
			}
			if err := db.Refresh(); err != nil {
				fail(fmt.Errorf("Refresh: %w", err))
				return
			}
			if err := record(); err != nil {
				fail(err)
				return
			}
			v := views[1+iter%(len(views)-1)]
			if err := db.Compact(v.Levels...); err != nil {
				fail(fmt.Errorf("Compact %s: %w", v.Name, err))
				return
			}
			if err := record(); err != nil {
				fail(err)
				return
			}
		}
	}()

	// Readers: alternate direct and batched execution, checking each
	// answer byte-for-byte against the serial reference at its epoch.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				src := tortureSrcs[(w+i)%len(tortureSrcs)]
				opts := Options{Workers: 1 + w%2}
				if i%2 == 1 {
					opts = Options{Batching: true}
				}
				ans, err := db.QueryWith(src, opts)
				if err != nil {
					if errors.Is(err, ErrBusy) {
						continue
					}
					fail(fmt.Errorf("reader %d: %w", w, err))
					return
				}
				got := canonAnswer(ans)
				epoch := ans.Stats.SnapshotEpoch
				ref, ok := lookupRef(epoch, src)
				for deadline := time.Now().Add(10 * time.Second); !ok; ref, ok = lookupRef(epoch, src) {
					if time.Now().After(deadline) {
						fail(fmt.Errorf("reader %d: no reference recorded for epoch %d", w, epoch))
						return
					}
					time.Sleep(time.Millisecond)
				}
				if got != ref {
					fail(fmt.Errorf("reader %d: epoch %d answer diverges from serial reference\ngot:\n%s\nwant:\n%s", w, epoch, got, ref))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Close force-drains the reclaimer; no replaced file may survive it.
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	assertNoLeakedFiles(t, dir)
}

// assertNoLeakedFiles checks that every heap/index file in a closed
// database directory is referenced by the manifest — replaced files
// must all have been reclaimed by Close.
func assertNoLeakedFiles(t *testing.T, dir string) {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	var meta struct {
		DimTables []string `json:"dim_tables"`
		Views     []struct {
			File    string            `json:"file"`
			Indexes map[string]string `json:"indexes"`
		} `json:"views"`
	}
	if err := json.Unmarshal(blob, &meta); err != nil {
		t.Fatalf("parse manifest: %v", err)
	}
	referenced := map[string]bool{}
	for _, f := range meta.DimTables {
		referenced[f] = true
	}
	for _, v := range meta.Views {
		referenced[v.File] = true
		for _, f := range v.Indexes {
			referenced[f] = true
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".heap") && !strings.HasSuffix(name, ".bmx") {
			continue
		}
		if !referenced[name] {
			t.Errorf("leaked file %s: on disk but not in the manifest", name)
		}
	}
}

// TestSnapshotReclamationPinBlocksUnlink proves a replaced view heap is
// unlinked only after the last pin protecting it is released, and that
// the pinned snapshot keeps reading the retired file correctly.
func TestSnapshotReclamationPinBlocksUnlink(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := CreateSample(dir, 0.002)
	if err != nil {
		t.Fatalf("CreateSample: %v", err)
	}
	defer db.Close()

	v := db.Views()[1]
	snap, unpin := db.db.Pin()
	sv := snap.ViewByName(v.Name)
	if sv == nil {
		t.Fatalf("snapshot lacks view %s", v.Name)
	}
	sumBefore := 0.0
	if err := sv.Heap.Scan(func(row int64, keys []int32, measures []float64) error {
		sumBefore += measures[0]
		return nil
	}); err != nil {
		t.Fatalf("pre-compact scan: %v", err)
	}

	before := listDataFiles(t, dir)
	if err := db.Compact(v.Levels...); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := listDataFiles(t, dir)
	for f := range before {
		if !after[f] {
			t.Fatalf("file %s deleted while epoch %d still pinned", f, snap.Epoch)
		}
	}
	if ms := db.MaintenanceStats(); ms.RetiredFiles == 0 {
		t.Fatalf("no retired files after Compact: %+v", ms)
	}

	// The pinned snapshot still reads the retired heap, byte-identically.
	sumAfter := 0.0
	if err := sv.Heap.Scan(func(row int64, keys []int32, measures []float64) error {
		sumAfter += measures[0]
		return nil
	}); err != nil {
		t.Fatalf("post-compact scan through pinned snapshot: %v", err)
	}
	if sumAfter != sumBefore {
		t.Fatalf("pinned snapshot scan changed: %v -> %v", sumBefore, sumAfter)
	}

	unpin()
	if ms := db.MaintenanceStats(); ms.RetiredFiles != 0 {
		t.Fatalf("retired files not reclaimed after unpin: %+v", ms)
	}
	final := listDataFiles(t, dir)
	removed := 0
	for f := range before {
		if !final[f] {
			removed++
		}
	}
	if removed == 0 {
		t.Fatal("no replaced file was unlinked after the last pin released")
	}
}

// TestSnapshotReclamationAfterCanceledBatch cancels a batched request
// mid-flight and checks its pin still drains, unblocking reclamation of
// files retired while the batch ran.
func TestSnapshotReclamationAfterCanceledBatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := CreateSample(dir, 0.002)
	if err != nil {
		t.Fatalf("CreateSample: %v", err)
	}
	defer db.Close()
	db.EnableBatching(BatchConfig{Window: 50 * time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := db.QueryContext(ctx, tortureSrcs[0], Options{Batching: true})
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	<-errc // canceled or finished — either way the pin must drain

	deadline := time.Now().Add(5 * time.Second)
	for db.MaintenanceStats().Pins != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pins never drained after cancellation: %+v", db.MaintenanceStats())
		}
		time.Sleep(time.Millisecond)
	}
	v := db.Views()[1]
	if err := db.Compact(v.Levels...); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if ms := db.MaintenanceStats(); ms.RetiredFiles != 0 {
		t.Fatalf("retired files survived with no pins outstanding: %+v", ms)
	}
}

func listDataFiles(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".heap") || strings.HasSuffix(name, ".bmx") {
			out[name] = true
		}
	}
	return out
}

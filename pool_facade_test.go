package mdxopt

import (
	"reflect"
	"testing"

	"mdxopt/internal/dag"
	"mdxopt/internal/workload"
)

// TestComposeWorkers: the canonical Workers knob wins when set; the
// legacy ExecWorkers × Parallelism product is honored otherwise; both
// clamp to the pool cap.
func TestComposeWorkers(t *testing.T) {
	cap := dag.WorkerCap()
	cases := []struct {
		workers, execWorkers, parallelism, want int
	}{
		{0, 0, 0, 1},
		{3, 0, 0, 3},
		{3, 8, 8, 3},  // Workers overrides the aliases
		{0, 4, 0, 4},  // old ExecWorkers alone
		{0, 0, 4, 4},  // old Parallelism alone
		{0, 2, 3, 6},  // aliases compose multiplicatively
		{-1, 2, 3, 6}, // non-positive Workers defers to aliases
		{1 << 20, 0, 0, cap},
		{0, 1 << 10, 1 << 10, cap},
	}
	for _, c := range cases {
		got := composeWorkers(c.workers, c.execWorkers, c.parallelism)
		if got != c.want {
			t.Errorf("composeWorkers(%d, %d, %d) = %d, want %d",
				c.workers, c.execWorkers, c.parallelism, got, c.want)
		}
	}
}

// TestWorkersKnobEquivalence: the unified Workers option must produce
// byte-identical answers at every width, report the pool-wide peak in
// both the new WorkerPeak field and its DAGParallelPeak alias, and
// surface the post-clamp width in EffectiveWorkers.
func TestWorkersKnobEquivalence(t *testing.T) {
	db := sample(t)
	src := workload.MDX()["Q1"]

	base, err := db.QueryWith(src, Options{Workers: 1, ColdCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.EffectiveWorkers != 1 || base.Stats.WorkerPeak != 1 {
		t.Fatalf("serial run reported EffectiveWorkers=%d WorkerPeak=%d, want 1/1",
			base.Stats.EffectiveWorkers, base.Stats.WorkerPeak)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := db.QueryWith(src, Options{Workers: workers, ColdCache: true})
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(par.Queries, base.Queries) {
			t.Fatalf("Workers=%d: answer differs from serial", workers)
		}
		if par.Stats.EffectiveWorkers != workers {
			t.Fatalf("Workers=%d: EffectiveWorkers = %d", workers, par.Stats.EffectiveWorkers)
		}
		if par.Stats.WorkerPeak != par.Stats.DAGParallelPeak {
			t.Fatalf("Workers=%d: WorkerPeak %d != DAGParallelPeak alias %d",
				workers, par.Stats.WorkerPeak, par.Stats.DAGParallelPeak)
		}
		if par.Stats.WorkerPeak < 1 || par.Stats.WorkerPeak > workers {
			t.Fatalf("Workers=%d: WorkerPeak %d outside [1, %d]",
				workers, par.Stats.WorkerPeak, workers)
		}
		if used := db.MemoryStats().Used; used != 0 {
			t.Fatalf("Workers=%d: %d bytes still reserved", workers, used)
		}
	}

	// The legacy aliases reach the same pool: ExecWorkers×Parallelism
	// composes into one width and the answer stays identical.
	legacy, err := db.QueryWith(src, Options{ExecWorkers: 2, Parallelism: 2, ColdCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Queries, base.Queries) {
		t.Fatal("legacy alias run differs from serial")
	}
	if legacy.Stats.EffectiveWorkers != 4 {
		t.Fatalf("ExecWorkers=2 Parallelism=2: EffectiveWorkers = %d, want 4",
			legacy.Stats.EffectiveWorkers)
	}

	// Absurd widths clamp to the machine cap instead of spawning a
	// goroutine per page.
	clamped, err := db.QueryWith(src, Options{Workers: 1 << 20, ColdCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if clamped.Stats.EffectiveWorkers != dag.WorkerCap() {
		t.Fatalf("Workers=1<<20: EffectiveWorkers = %d, want cap %d",
			clamped.Stats.EffectiveWorkers, dag.WorkerCap())
	}
	if !reflect.DeepEqual(clamped.Queries, base.Queries) {
		t.Fatal("clamped run differs from serial")
	}
}

GO ?= go

.PHONY: check build vet test race bench go-bench scan-bench serve-bench clean

# The full gate: compile everything, vet, and run the test suite under
# the race detector.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# All benchmarks: the Go micro/paper benchmarks plus the scan and serve
# experiments (both seeded deterministically; they write BENCH_scan.json
# and BENCH_serve.json).
bench: go-bench scan-bench serve-bench

# Paper experiment benchmarks (Tests 1-7 etc.).
go-bench:
	$(GO) test -bench . -benchtime 1x -benchmem -run xxx ./...

# The storage hot-path grid (workers x pool sharding x readahead);
# writes BENCH_scan.json.
scan-bench:
	$(GO) run ./cmd/mdxbench -dir /tmp/mdxopt-scandb -scale 0.1 -exp scan -json BENCH_scan.json

# The serving-layer comparison; writes BENCH_serve.json.
serve-bench:
	$(GO) run ./cmd/mdxbench -dir /tmp/mdxopt-servedb -scale 0.1 -exp serve -json BENCH_serve.json

clean:
	rm -rf /tmp/mdxopt-servedb /tmp/mdxopt-scandb

GO ?= go

.PHONY: check build vet fmt test race race-dag fuzz-smoke bench go-bench scan-bench serve-bench mem-bench cache-bench dag-bench agg-bench pool-bench idx-bench mut-bench clean

# The full gate: compile everything, vet, check formatting, run the
# suite in shuffled order, race-test the concurrent packages (fast
# feedback), run the whole suite under the race detector, then smoke
# the fuzz targets.
check: build vet fmt test race-dag race fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting gate: gofmt must have nothing to rewrite.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# -shuffle=on randomizes test (and subtest) execution order so the
# tier-1 gate also catches inter-test state dependence.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# Focused race gate for the concurrent layers: the worker pool and
# task-graph executor, the memory broker, the result cache, the
# sharded buffer pool, the page-batched fetch / bitmap routing layers
# under the probe worker pool, the snapshot-isolated catalog (star,
# epoch reclamation in storage) with the core executor above it, and
# the facade-level snapshot torture test.
race-dag:
	$(GO) test -race ./internal/dag/... ./internal/exec/... ./internal/sched/... ./internal/mem/... ./internal/rescache/... ./internal/storage/... ./internal/table/... ./internal/bitmap/... ./internal/core/... ./internal/star/...
	$(GO) test -race -run 'TestSnapshotTorture|TestSnapshotReclamation' .

# Short deterministic runs of the native fuzz targets (packed-key
# codec, spill record codec, selection-vector expansion) — regression
# smoke, not a fuzzing session.
fuzz-smoke:
	$(GO) test ./internal/exec -run '^$$' -fuzz FuzzPackedKeyRoundTrip -fuzztime 5s
	$(GO) test ./internal/exec -run '^$$' -fuzz FuzzSpillRecCodec -fuzztime 5s
	$(GO) test ./internal/exec -run '^$$' -fuzz FuzzSelVecExpand -fuzztime 5s

# All benchmarks: the Go micro/paper benchmarks plus the scan, serve,
# mem and cache experiments (all seeded deterministically; they write
# BENCH_scan.json, BENCH_serve.json, BENCH_mem.json and
# BENCH_cache.json).
bench: go-bench scan-bench serve-bench mem-bench cache-bench dag-bench agg-bench pool-bench idx-bench mut-bench

# Paper experiment benchmarks (Tests 1-7 etc.).
go-bench:
	$(GO) test -bench . -benchtime 1x -benchmem -run xxx ./...

# The storage hot-path grid (workers x pool sharding x readahead);
# writes BENCH_scan.json.
scan-bench:
	$(GO) run ./cmd/mdxbench -dir /tmp/mdxopt-scandb -scale 0.1 -exp scan -json BENCH_scan.json

# The serving-layer comparison; writes BENCH_serve.json.
serve-bench:
	$(GO) run ./cmd/mdxbench -dir /tmp/mdxopt-servedb -scale 0.1 -exp serve -json BENCH_serve.json

# Memory-governed execution: budget x concurrency sweep showing bounded
# peak memory with spill-backed degradation; writes BENCH_mem.json.
mem-bench:
	$(GO) run ./cmd/mdxbench -dir /tmp/mdxopt-memdb -scale 0.1 -exp mem -json BENCH_mem.json

# Semantic result cache: cache budget x working-set sweep showing warm
# replays served by rollup instead of page I/O; writes BENCH_cache.json.
cache-bench:
	$(GO) run ./cmd/mdxbench -dir /tmp/mdxopt-cachedb -scale 0.1 -exp cache -json BENCH_cache.json

# Task-graph executor: ExecWorkers x class-count sweep showing
# inter-class parallel speedup under a memory budget; writes
# BENCH_dag.json.
dag-bench:
	$(GO) run ./cmd/mdxbench -dir /tmp/mdxopt-dagdb -scale 0.1 -exp dag -json BENCH_dag.json

# Aggregation fold kernel: packed vs byte-key microbenchmark plus the
# workers x budget equivalence sweep; also runs the in-tree kernel
# micros, then writes BENCH_agg.json.
agg-bench:
	$(GO) test ./internal/exec -run '^$$' -bench 'BenchmarkSharedScanCPU|BenchmarkAggTable' -benchmem
	$(GO) run ./cmd/mdxbench -dir /tmp/mdxopt-aggdb -scale 0.1 -exp agg -json BENCH_agg.json

# Unified worker pool: morsel-driven vs static-partition scan sweep over
# workers x classes x latency shapes; writes BENCH_pool.json.
pool-bench:
	$(GO) run ./cmd/mdxbench -dir /tmp/mdxopt-pooldb -scale 0.1 -exp pool -json BENCH_pool.json

# Vectorized shared-index probe: word-at-a-time routing vs the scalar
# tuple loop (dense multi-query union), plus the workers x budget
# equivalence sweep; also runs the in-tree routing/fetch micros, then
# writes BENCH_idx.json.
idx-bench:
	$(GO) test ./internal/exec -run '^$$' -bench 'BenchmarkBitmapRoute|BenchmarkFetchBatches' -benchmem
	$(GO) run ./cmd/mdxbench -dir /tmp/mdxopt-idxdb -scale 0.1 -exp idx -json BENCH_idx.json

# Maintenance concurrency: snapshot-pinned vs serialized (legacy locked)
# query latency while Compact+Refresh run in flight; gates a >= 5x p99
# improvement under continuous maintenance (>= 3x at higher client
# counts, where single-core scheduler time-sharing floors the tail) and
# zero leaked files after close; writes BENCH_mut.json.
mut-bench:
	$(GO) run ./cmd/mdxbench -dir /tmp/mdxopt-mutdb -scale 0.1 -exp mut -json BENCH_mut.json

clean:
	rm -rf /tmp/mdxopt-servedb /tmp/mdxopt-scandb /tmp/mdxopt-memdb /tmp/mdxopt-cachedb /tmp/mdxopt-dagdb /tmp/mdxopt-aggdb /tmp/mdxopt-pooldb /tmp/mdxopt-idxdb /tmp/mdxopt-mutdb

GO ?= go

.PHONY: check build vet test race bench serve-bench clean

# The full gate: compile everything, vet, and run the test suite under
# the race detector.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Paper experiment benchmarks (Tests 1-7 etc.).
bench:
	$(GO) test -bench . -benchtime 1x -run xxx ./...

# The serving-layer comparison; writes BENCH_serve.json.
serve-bench:
	$(GO) run ./cmd/mdxbench -dir /tmp/mdxopt-servedb -scale 0.1 -exp serve -json BENCH_serve.json

clean:
	rm -rf /tmp/mdxopt-servedb

package mdxopt

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"mdxopt/internal/workload"
)

// TestExecWorkersEquivalence runs the same expressions serially and with
// the parallel task-graph executor and requires byte-identical answers:
// same component queries, groups, orders and values, and the same
// deterministic work counters.
func TestExecWorkersEquivalence(t *testing.T) {
	db := sample(t)
	srcs := []string{
		// Four component queries at mixed granularities: several classes.
		`{A''.A1.CHILDREN, A'.AA2} on COLUMNS {B''.B1, B'.BB3} on ROWS CONTEXT ABCD FILTER (D'.DD1)`,
		workload.MDX()["Q1"],
	}
	for _, src := range srcs {
		base, err := db.QueryWith(src, Options{ExecWorkers: 1, ColdCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if base.Stats.DAGNodes == 0 || base.Stats.DAGParallelPeak != 1 {
			t.Fatalf("serial run reported DAG nodes=%d peak=%d",
				base.Stats.DAGNodes, base.Stats.DAGParallelPeak)
		}
		par, err := db.QueryWith(src, Options{ExecWorkers: 4, ColdCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par.Queries, base.Queries) {
			t.Fatalf("parallel answer differs from serial for %q", src)
		}
		if par.Stats.DAGNodes != base.Stats.DAGNodes {
			t.Fatalf("DAG nodes %d vs %d serial", par.Stats.DAGNodes, base.Stats.DAGNodes)
		}
		if par.Stats.TuplesScanned != base.Stats.TuplesScanned ||
			par.Stats.TuplesFetched != base.Stats.TuplesFetched {
			t.Fatalf("parallel work counters differ: %+v vs %+v", par.Stats, base.Stats)
		}
		if used := db.MemoryStats().Used; used != 0 {
			t.Fatalf("%d bytes still reserved after the query", used)
		}
	}
}

// TestExecWorkersUnderMutation races parallel-executor queries against
// value-preserving mutations: answers must never change, with the
// serialization and the task graph's error/cleanup paths exercised
// together.
func TestExecWorkersUnderMutation(t *testing.T) {
	dir, err := os.MkdirTemp("", "mdxopt-dagmut-test")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := CreateSample(filepath.Join(dir, "db"), 0.002)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	pool := workload.MDX()
	srcs := []string{pool["Q1"], pool["Q3"], pool["Q7"]}
	opts := Options{ExecWorkers: 4}
	want := make([]*Answer, len(srcs))
	for i, src := range srcs {
		if want[i], err = db.QueryWith(src, opts); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	errs := make(chan error, 16)
	var wg sync.WaitGroup
	for w := range srcs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a, err := db.QueryWith(srcs[w], opts)
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
					return
				}
				if !reflect.DeepEqual(a.Queries, want[w].Queries) {
					errs <- fmt.Errorf("worker %d iter %d: answer changed under concurrent mutation", w, i)
					return
				}
			}
		}(w)
	}

	if err := db.Materialize("A''", "B''", "C''", "D'"); err != nil {
		errs <- fmt.Errorf("materialize: %w", err)
	}
	if err := db.Refresh(); err != nil {
		errs <- fmt.Errorf("refresh: %w", err)
	}
	if err := db.Compact("A''", "B''", "C''", "D'"); err != nil {
		errs <- fmt.Errorf("compact: %w", err)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if used := db.MemoryStats().Used; used != 0 {
		t.Fatalf("%d bytes still reserved after the race", used)
	}
}

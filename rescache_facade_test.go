package mdxopt

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"mdxopt/internal/workload"
)

// sameAnswer compares two answers' query results exactly: names,
// group-bys, columns, member order and float64 values bit for bit. The
// sample data's measures are whole dollars, so SUM results are exact
// under any aggregation order and cache-served rollups must match
// uncached execution byte for byte.
func sameAnswer(t *testing.T, label string, got, want *Answer) {
	t.Helper()
	if len(got.Queries) != len(want.Queries) {
		t.Fatalf("%s: %d query results, want %d", label, len(got.Queries), len(want.Queries))
	}
	for i := range want.Queries {
		g, w := got.Queries[i], want.Queries[i]
		if g.Name != w.Name || g.GroupBy != w.GroupBy || g.Aggregate != w.Aggregate {
			t.Fatalf("%s: result %d is %s/%s/%s, want %s/%s/%s",
				label, i, g.Name, g.GroupBy, g.Aggregate, w.Name, w.GroupBy, w.Aggregate)
		}
		if len(g.Rows) != len(w.Rows) {
			t.Fatalf("%s: %s has %d rows, want %d", label, g.Name, len(g.Rows), len(w.Rows))
		}
		for r := range w.Rows {
			gr, wr := g.Rows[r], w.Rows[r]
			if gr.Value != wr.Value || len(gr.Members) != len(wr.Members) {
				t.Fatalf("%s: %s row %d = %v %v, want %v %v",
					label, g.Name, r, gr.Members, gr.Value, wr.Members, wr.Value)
			}
			for m := range wr.Members {
				if gr.Members[m] != wr.Members[m] {
					t.Fatalf("%s: %s row %d member %d = %q, want %q",
						label, g.Name, r, m, gr.Members[m], wr.Members[m])
				}
			}
		}
	}
}

// TestResultCacheEquivalence replays a randomized workload against a
// result-cached database and requires every answer — scan-served or
// cache-served — to be byte-identical to uncached execution, including
// after a mutation invalidates the cache.
func TestResultCacheEquivalence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "eqdb")
	db, err := CreateSample(dir, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	var names []string
	srcs := workload.MDX()
	for name := range srcs {
		names = append(names, name)
	}
	sort.Strings(names)

	// Uncached baseline.
	plain, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	baseline := map[string]*Answer{}
	for _, name := range names {
		a, err := plain.Query(srcs[name])
		if err != nil {
			t.Fatalf("baseline %s: %v", name, err)
		}
		baseline[name] = a
	}
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}

	cached, err := OpenWith(dir, OpenOptions{ResultCacheBudget: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()

	// Three shuffled passes: the first of each query executes and seeds
	// the cache, later ones are served by rollup.
	rng := rand.New(rand.NewSource(42))
	var sequence []string
	for pass := 0; pass < 3; pass++ {
		p := append([]string(nil), names...)
		rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
		sequence = append(sequence, p...)
	}
	var hits int64
	for step, name := range sequence {
		a, err := cached.Query(srcs[name])
		if err != nil {
			t.Fatalf("step %d (%s): %v", step, name, err)
		}
		sameAnswer(t, fmt.Sprintf("step %d (%s)", step, name), a, baseline[name])
		hits += a.Stats.ResultCacheHits
	}
	if hits == 0 {
		t.Fatal("replayed workload never hit the result cache")
	}
	if st := cached.ResultCacheStats(); st.Hits == 0 || st.Inserts == 0 {
		t.Fatalf("cache stats = %+v", st)
	}

	// Mutate: the cache must drop everything, and nothing stale may be
	// served afterwards.
	loader := cached.Load()
	if err := loader.AddCodes([]int32{0, 0, 0, 0}, 42); err != nil {
		t.Fatal(err)
	}
	if err := loader.Close(); err != nil {
		t.Fatal(err)
	}
	if st := cached.ResultCacheStats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("cache not invalidated by mutation: %+v", st)
	}
	for _, name := range names {
		first, err := cached.Query(srcs[name])
		if err != nil {
			t.Fatalf("post-mutation %s: %v", name, err)
		}
		if first.Stats.ResultCacheHits != 0 {
			t.Fatalf("post-mutation first run of %s served from a stale cache", name)
		}
		second, err := cached.Query(srcs[name])
		if err != nil {
			t.Fatal(err)
		}
		sameAnswer(t, "post-mutation warm "+name, second, first)
	}
}

// TestResultCacheCountersAndZeroIO pins the facade counters: a repeated
// query is served with zero page reads, Answer.Stats reports the hit,
// and DB.ResultCacheStats aggregates across requests.
func TestResultCacheCountersAndZeroIO(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ctrdb")
	db, err := CreateSample(dir, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	cdb, err := OpenWith(dir, OpenOptions{ResultCacheBudget: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()

	src := workload.MDX()["Q1"]
	cold, err := cdb.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.ResultCacheHits != 0 || cold.Stats.ResultCacheMisses == 0 {
		t.Fatalf("cold stats = %+v", cold.Stats)
	}
	warm, err := cdb.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.ResultCacheHits == 0 || warm.Stats.ResultCacheMisses != 0 {
		t.Fatalf("warm stats = %+v", warm.Stats)
	}
	if warm.Stats.PageReads != 0 {
		t.Fatalf("cache-served query read %d pages", warm.Stats.PageReads)
	}
	st := cdb.ResultCacheStats()
	if st.Hits == 0 || st.Misses == 0 || st.Inserts == 0 || st.Budget != 8<<20 {
		t.Fatalf("ResultCacheStats = %+v", st)
	}
}

// TestResultCacheBatchedPath drives the admission scheduler: the second
// submission replans (the cache's epoch advanced past the stored batch
// plan) and is served by rollup; the third reuses the batch plan and
// counts a batch-cache hit.
func TestResultCacheBatchedPath(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "batchdb")
	db, err := CreateSample(dir, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	cdb, err := OpenWith(dir, OpenOptions{ResultCacheBudget: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()
	cdb.EnableBatching(BatchConfig{})

	src := workload.MDX()["Q3"]
	opts := Options{Batching: true}
	first, err := cdb.QueryWith(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Batched || first.Stats.ResultCacheHits != 0 {
		t.Fatalf("first batched answer = %+v", first.Stats)
	}
	second, err := cdb.QueryWith(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.ResultCacheHits == 0 || second.Stats.PageReads != 0 {
		t.Fatalf("second batched answer not cache-served: %+v", second.Stats)
	}
	sameAnswer(t, "batched warm", second, first)
	if _, err := cdb.QueryWith(src, opts); err != nil {
		t.Fatal(err)
	}
	if got := cdb.BatchPlanCacheHits(); got == 0 {
		t.Fatalf("BatchPlanCacheHits = %d after replaying a batch composition", got)
	}
	if cdb.PlanCacheHits() < cdb.BatchPlanCacheHits() {
		t.Fatal("PlanCacheHits does not include batch-cache hits")
	}
}

// TestPlanCacheLRUEviction fills the plan cache past capacity and
// checks per-entry LRU: a recently re-used entry survives the overflow,
// the least recently used one is evicted.
func TestPlanCacheLRUEviction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "lrudb")
	db, err := CreateSample(dir, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Distinct expressions: member subsets of A'' x B'' x C''.
	var srcs []string
	subsets := [][]string{
		{"A1"}, {"A2"}, {"A3"}, {"A1", "A2"}, {"A1", "A3"}, {"A2", "A3"}, {"A1", "A2", "A3"},
	}
	axis := func(dim string, names []string) string {
		s := ""
		for i, n := range names {
			if i > 0 {
				s += ", "
			}
			s += dim + "." + n
		}
		return s
	}
	for _, as := range subsets {
		for _, bs := range [][]string{{"B1"}, {"B2"}, {"B3"}, {"B1", "B2"}, {"B1", "B3"}, {"B2", "B3"}, {"B1", "B2", "B3"}} {
			for _, cs := range [][]string{{"C1"}, {"C2"}, {"C3"}, {"C1", "C2"}, {"C1", "C3"}, {"C2", "C3"}} {
				srcs = append(srcs, fmt.Sprintf(
					`{%s} on COLUMNS {%s} on ROWS {%s} on PAGES CONTEXT ABCD FILTER (D'.DD1)`,
					axis("A''", as), axis("B''", bs), axis("C''", cs)))
			}
		}
	}
	if len(srcs) < maxCachedPlans+2 {
		t.Fatalf("only %d distinct sources", len(srcs))
	}

	// Fill the cache to capacity with srcs[0..maxCachedPlans-1]. plan()
	// parses and optimizes without executing, which is all the cache
	// stores.
	for i := 0; i < maxCachedPlans; i++ {
		if _, _, err := db.plan(db.db.Snapshot(), srcs[i], Options{}); err != nil {
			t.Fatal(err)
		}
	}
	// Refresh srcs[0]; srcs[1] becomes the LRU entry.
	if _, _, err := db.plan(db.db.Snapshot(), srcs[0], Options{}); err != nil {
		t.Fatal(err)
	}
	hitsBefore := db.PlanCacheHits()
	// Overflow with a fresh expression: exactly one entry is evicted.
	if _, _, err := db.plan(db.db.Snapshot(), srcs[maxCachedPlans], Options{}); err != nil {
		t.Fatal(err)
	}
	db.mu.Lock()
	size := len(db.planCache)
	db.mu.Unlock()
	if size != maxCachedPlans {
		t.Fatalf("plan cache holds %d entries, want %d", size, maxCachedPlans)
	}
	// The refreshed entry survived ...
	if _, _, err := db.plan(db.db.Snapshot(), srcs[0], Options{}); err != nil {
		t.Fatal(err)
	}
	if got := db.PlanCacheHits(); got != hitsBefore+1 {
		t.Fatalf("refreshed entry was evicted (hits %d -> %d)", hitsBefore, got)
	}
	// ... and the least recently used one was the victim.
	if _, _, err := db.plan(db.db.Snapshot(), srcs[1], Options{}); err != nil {
		t.Fatal(err)
	}
	if got := db.PlanCacheHits(); got != hitsBefore+1 {
		t.Fatalf("LRU entry still cached (hits %d -> %d)", hitsBefore, got)
	}
}

package mdxopt

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestMaintenanceLifecycle exercises the staleness/refresh/compact cycle
// through the public API and checks the optimizer avoids stale views.
func TestMaintenanceLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "m")
	db, err := Create(dir, SchemaSpec{
		Measure: "m",
		Dims: []DimensionSpec{
			{Name: "P", Levels: []LevelSpec{
				{Name: "sku", Members: []string{"a", "b", "c", "d"}, Parent: []int32{0, 0, 1, 1}},
				{Name: "cat", Members: []string{"x", "y"}},
			}},
			{Name: "R", Levels: []LevelSpec{
				{Name: "city", Members: []string{"m1", "m2"}, Parent: []int32{0, 0}},
				{Name: "country", Members: []string{"us"}},
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	load := func(rows [][2]string, val float64) {
		t.Helper()
		loader := db.Load()
		for _, r := range rows {
			if err := loader.Add([]string{r[0], r[1]}, val); err != nil {
				t.Fatal(err)
			}
		}
		if err := loader.Close(); err != nil {
			t.Fatal(err)
		}
	}
	load([][2]string{{"a", "m1"}, {"b", "m2"}, {"c", "m1"}}, 10)

	if err := db.Materialize("cat", "city"); err != nil {
		t.Fatal(err)
	}
	if got := db.StaleViews(); len(got) != 0 {
		t.Fatalf("StaleViews after materialize = %v", got)
	}

	// New facts make the view stale; the optimizer must fall back to the
	// base table (results stay correct).
	load([][2]string{{"d", "m2"}, {"a", "m1"}}, 5)
	if got := db.StaleViews(); len(got) != 1 {
		t.Fatalf("StaleViews = %v, want 1", got)
	}
	src := `{cat.x, cat.y} on COLUMNS CONTEXT m`
	ans, err := db.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ans.Plan, "catcity") || !strings.Contains(ans.Plan, "skucity") {
		t.Fatalf("stale-view plan = %q, want base table", ans.Plan)
	}
	wantX := 10.0 + 10 + 5 // a=10, b=10 initially, plus a=5 in the delta
	if v, _ := findRow(ans, "x"); v != wantX {
		t.Fatalf("x = %v, want %v", v, wantX)
	}

	// Refresh: view usable again and results unchanged.
	if err := db.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := db.StaleViews(); len(got) != 0 {
		t.Fatalf("StaleViews after refresh = %v", got)
	}
	ans2, err := db.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := findRow(ans2, "x"); v != wantX {
		t.Fatalf("x after refresh = %v, want %v", v, wantX)
	}

	// Compact merges the duplicate groups; the view is then strictly
	// smaller than the base table and the optimizer picks it.
	if err := db.Compact("cat", "city"); err != nil {
		t.Fatal(err)
	}
	ans3, err := db.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans3.Plan, "catcity") {
		t.Fatalf("post-compact plan = %q, want the materialized view", ans3.Plan)
	}
	if v, _ := findRow(ans3, "x"); v != wantX {
		t.Fatalf("x after compact = %v, want %v", v, wantX)
	}
	if err := db.Compact("cat", "nope"); err == nil {
		t.Fatal("Compact accepted bad levels")
	}
}

func findRow(ans *Answer, member string) (float64, bool) {
	for _, row := range ans.Queries[0].Rows {
		if row.Members[0] == member {
			return row.Value, true
		}
	}
	return 0, false
}

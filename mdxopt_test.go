package mdxopt

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var (
	sampleDB  *DB
	sampleDir string
)

func TestMain(m *testing.M) {
	code := m.Run()
	if sampleDir != "" {
		os.RemoveAll(sampleDir)
	}
	if serveDBDir != "" {
		os.RemoveAll(serveDBDir)
	}
	os.Exit(code)
}

func sample(t *testing.T) *DB {
	t.Helper()
	if sampleDB != nil {
		return sampleDB
	}
	// Not t.TempDir(): the database outlives the first test that builds
	// it, and later tests create files in its directory.
	dir, err := os.MkdirTemp("", "mdxopt-api-test")
	if err != nil {
		t.Fatal(err)
	}
	sampleDir = dir
	db, err := CreateSample(filepath.Join(dir, "db"), 0.01)
	if err != nil {
		t.Fatalf("CreateSample: %v", err)
	}
	sampleDB = db
	return db
}

func TestCreateSampleShape(t *testing.T) {
	// A private database, not sample(t): this test pins the exact
	// freshly-created view count, and other tests materialize additional
	// views into the shared fixture (test order is shuffled).
	db, err := CreateSample(filepath.Join(t.TempDir(), "db"), 0.01)
	if err != nil {
		t.Fatalf("CreateSample: %v", err)
	}
	defer db.Close()
	if got := db.Dimensions(); len(got) != 4 || got[0] != "A" || got[3] != "D" {
		t.Fatalf("Dimensions = %v", got)
	}
	if db.Measure() != "dollars" {
		t.Fatalf("Measure = %q", db.Measure())
	}
	if db.Facts() != 20000 {
		t.Fatalf("Facts = %d", db.Facts())
	}
	views := db.Views()
	if len(views) != 9 {
		t.Fatalf("views = %d", len(views))
	}
	if views[0].Name != "ABCD" || views[0].Levels[0] != "A" {
		t.Fatalf("base view = %+v", views[0])
	}
}

func TestQueryEndToEnd(t *testing.T) {
	db := sample(t)
	// ColdCache so the PageReads assertion below holds regardless of
	// which tests warmed the shared sample database's pool first.
	ans, err := db.QueryWith(`{A''.A1.CHILDREN} on COLUMNS {B''.B1} on ROWS {C''.C1} on PAGES CONTEXT ABCD FILTER (D'.DD1)`,
		Options{ColdCache: true})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(ans.Queries) != 1 {
		t.Fatalf("component queries = %d", len(ans.Queries))
	}
	qr := ans.Queries[0]
	if len(qr.Rows) == 0 {
		t.Fatal("no result rows")
	}
	if len(qr.Columns) != 4 {
		t.Fatalf("columns = %v", qr.Columns)
	}
	// Every member name in column A is a mid-level member (AAx).
	for _, row := range qr.Rows {
		if !strings.HasPrefix(row.Members[0], "AA") {
			t.Fatalf("unexpected A member %q", row.Members[0])
		}
		if row.Members[3] != "DD1" {
			t.Fatalf("D member %q, want DD1", row.Members[3])
		}
		if row.Value <= 0 {
			t.Fatalf("non-positive aggregate %v", row.Value)
		}
	}
	if ans.Plan == "" || ans.Stats.PageReads == 0 {
		t.Fatalf("missing plan/stats: %+v", ans.Stats)
	}
}

func TestQueryMultiVariant(t *testing.T) {
	db := sample(t)
	// A at two levels -> two component queries.
	ans, err := db.Query(`{A''.A1, A''.A2.CHILDREN} on COLUMNS {B''.B1} on ROWS CONTEXT ABCD FILTER (D'.DD1)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Queries) != 2 {
		t.Fatalf("component queries = %d, want 2", len(ans.Queries))
	}
	if ans.Queries[0].GroupBy == ans.Queries[1].GroupBy {
		t.Fatal("variants share a group-by")
	}
}

func TestQueryWithOptionsAndExplain(t *testing.T) {
	db := sample(t)
	src := `{A''.A1} on COLUMNS {B''.B2} on ROWS CONTEXT ABCD FILTER (D'.DD1)`
	for _, alg := range []Algorithm{TPLO, ETPLG, GG, Optimal} {
		ans, err := db.QueryWith(src, Options{Algorithm: alg, ColdCache: true})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(ans.Queries[0].Rows) == 0 {
			t.Fatalf("%s: empty result", alg)
		}
	}
	planStr, err := db.Explain(src, Options{PaperPlanSpace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planStr, "class") {
		t.Fatalf("Explain = %q", planStr)
	}
	if _, err := db.QueryWith(src, Options{Algorithm: Algorithm("nope")}); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

func TestQueryAgreesAcrossAlgorithms(t *testing.T) {
	db := sample(t)
	src := `{A''.A1.CHILDREN} on COLUMNS {B''.B2, B''.B3} on ROWS {C''.C1.CHILDREN} on PAGES CONTEXT ABCD FILTER (D'.DD1)`
	var base *Answer
	for _, opts := range []Options{
		{Algorithm: TPLO}, {Algorithm: GG}, {Algorithm: GG, PaperPlanSpace: true},
	} {
		ans, err := db.QueryWith(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = ans
			continue
		}
		if len(ans.Queries) != len(base.Queries) {
			t.Fatal("query counts differ")
		}
		for i := range ans.Queries {
			if len(ans.Queries[i].Rows) != len(base.Queries[i].Rows) {
				t.Fatalf("row counts differ for %s", ans.Queries[i].Name)
			}
			for j, row := range ans.Queries[i].Rows {
				if row.Value != base.Queries[i].Rows[j].Value {
					t.Fatalf("values differ for %s row %d", ans.Queries[i].Name, j)
				}
			}
		}
	}
}

func TestQuerySyntaxError(t *testing.T) {
	db := sample(t)
	if _, err := db.Query(`{nonsense`); err == nil {
		t.Fatal("syntax error accepted")
	}
	if _, err := db.Query(`{Nope.X} on COLUMNS CONTEXT ABCD`); err == nil {
		t.Fatal("unknown member accepted")
	}
}

func TestCustomSchemaLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shop")
	db, err := Create(dir, SchemaSpec{
		Measure: "revenue",
		Dims: []DimensionSpec{
			{Name: "Product", Levels: []LevelSpec{
				{Name: "SKU", Members: []string{"apple", "banana", "carrot", "donut"}, Parent: []int32{0, 0, 1, 1}},
				{Name: "Category", Members: []string{"fruit", "other"}},
			}},
			{Name: "Region", Levels: []LevelSpec{
				{Name: "City", Members: []string{"madison", "chicago", "tokyo"}, Parent: []int32{0, 0, 1}},
				{Name: "Country", Members: []string{"us", "jp"}},
			}},
		},
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	loader := db.Load()
	facts := []struct {
		sku, city string
		rev       float64
	}{
		{"apple", "madison", 10},
		{"banana", "madison", 5},
		{"carrot", "chicago", 7},
		{"donut", "tokyo", 3},
		{"apple", "tokyo", 2},
	}
	for _, f := range facts {
		if err := loader.Add([]string{f.sku, f.city}, f.rev); err != nil {
			t.Fatal(err)
		}
	}
	if err := loader.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Materialize("Category", "City"); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if err := db.BuildBitmapIndex("Product", "Category", "City"); err != nil {
		t.Fatalf("BuildBitmapIndex: %v", err)
	}

	ans, err := db.Query(`{Category.fruit, Category.other} on COLUMNS {Country.us, Country.jp} on ROWS CONTEXT shop`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	qr := ans.Queries[0]
	want := map[string]float64{
		"fruit/us": 15, "fruit/jp": 2, "other/us": 7, "other/jp": 3,
	}
	if len(qr.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d: %+v", len(qr.Rows), len(want), qr.Rows)
	}
	for _, row := range qr.Rows {
		key := row.Members[0] + "/" + row.Members[1]
		if want[key] != row.Value {
			t.Fatalf("%s = %v, want %v", key, row.Value, want[key])
		}
	}

	// Persist and reopen.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db2.Close()
	if db2.Facts() != 5 {
		t.Fatalf("facts after reopen = %d", db2.Facts())
	}
	ans2, err := db2.Query(`{Category.fruit} on COLUMNS CONTEXT shop`)
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Queries[0].Rows[0].Value != 17 {
		t.Fatalf("fruit total = %v, want 17", ans2.Queries[0].Rows[0].Value)
	}
}

func TestLoaderValidation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "v")
	db, err := Create(dir, SchemaSpec{
		Measure: "m",
		Dims: []DimensionSpec{
			{Name: "X", Levels: []LevelSpec{{Name: "x", Members: []string{"a", "b"}}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	loader := db.Load()
	defer loader.Close()
	if err := loader.Add([]string{"a", "b"}, 1); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := loader.Add([]string{"zzz"}, 1); err == nil {
		t.Fatal("unknown member accepted")
	}
	if err := loader.Add([]string{"a"}, 1); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializeAndIndexValidation(t *testing.T) {
	db := sample(t)
	if err := db.Materialize("A'", "B'"); err == nil {
		t.Fatal("short level vector accepted")
	}
	if err := db.Materialize("A'", "B'", "C'", "Z"); err == nil {
		t.Fatal("unknown level accepted")
	}
	if err := db.BuildBitmapIndex("A", "A''", "B''", "C''", "D''"); err == nil {
		t.Fatal("index on unmaterialized view accepted")
	}
	if err := db.BuildBitmapIndex("Nope", "A'", "B'", "C'", "D"); err == nil {
		t.Fatal("unknown dimension accepted")
	}
}

func TestAggregateQueriesEndToEnd(t *testing.T) {
	db := sample(t)
	// A multi-aggregate view lets COUNT/AVG use a precomputed group-by.
	if err := db.MaterializeMulti("A''", "B''", "C''", "D'"); err != nil {
		t.Fatalf("MaterializeMulti: %v", err)
	}
	base := `{A''.MEMBERS} on COLUMNS CONTEXT ABCD AGGREGATE %s FILTER (D'.DD1)`
	get := func(agg string) map[string]float64 {
		t.Helper()
		ans, err := db.Query(strings.ReplaceAll(base, "%s", agg))
		if err != nil {
			t.Fatalf("%s: %v", agg, err)
		}
		qr := ans.Queries[0]
		if qr.Aggregate != strings.ToUpper(agg) {
			t.Fatalf("Aggregate = %q", qr.Aggregate)
		}
		out := map[string]float64{}
		for _, row := range qr.Rows {
			out[row.Members[0]] = row.Value
		}
		return out
	}
	sum := get("SUM")
	count := get("COUNT")
	avg := get("AVG")
	min := get("MIN")
	max := get("MAX")
	if len(sum) != 3 {
		t.Fatalf("groups = %d", len(sum))
	}
	var totalCount float64
	for member := range sum {
		if count[member] <= 0 {
			t.Fatalf("%s count = %v", member, count[member])
		}
		totalCount += count[member]
		if got := sum[member] / count[member]; got != avg[member] {
			t.Fatalf("%s avg = %v, want %v", member, avg[member], got)
		}
		if min[member] > avg[member] || avg[member] > max[member] {
			t.Fatalf("%s avg outside [min,max]", member)
		}
	}
	// COUNT over all of A'' with only the D filter = rows with D' = DD1.
	if totalCount <= 0 || totalCount >= float64(db.Facts()) {
		t.Fatalf("total count %v out of range", totalCount)
	}
}

func TestQueryWithParallelism(t *testing.T) {
	db := sample(t)
	src := `{A''.A1.CHILDREN} on COLUMNS {B''.B2, B''.B3} on ROWS CONTEXT ABCD FILTER (D'.DD1)`
	serial, err := db.QueryWith(src, Options{Algorithm: GG})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := db.QueryWith(src, Options{Algorithm: GG, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Queries {
		a, b := serial.Queries[i].Rows, parallel.Queries[i].Rows
		if len(a) != len(b) {
			t.Fatalf("query %d row counts differ", i)
		}
		for j := range a {
			if a[j].Value != b[j].Value {
				t.Fatalf("query %d row %d: %v vs %v", i, j, a[j].Value, b[j].Value)
			}
		}
	}
}

func TestPlanCache(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pc")
	db, err := CreateSample(dir, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	src := `{A''.A1} on COLUMNS {B''.B2} on ROWS CONTEXT ABCD FILTER (D'.DD1)`

	first, err := db.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if db.PlanCacheHits() != 0 {
		t.Fatalf("hits before reuse = %d", db.PlanCacheHits())
	}
	second, err := db.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if db.PlanCacheHits() != 1 {
		t.Fatalf("hits after reuse = %d, want 1", db.PlanCacheHits())
	}
	if second.Plan != first.Plan {
		t.Fatal("cached plan differs")
	}
	// Different options miss the cache.
	if _, err := db.QueryWith(src, Options{Algorithm: TPLO}); err != nil {
		t.Fatal(err)
	}
	if db.PlanCacheHits() != 1 {
		t.Fatalf("different options hit the cache")
	}

	// Mutations invalidate: after a load, the cached plan (which uses a
	// now-stale view) must not be replayed.
	loader := db.Load()
	if err := loader.AddCodes([]int32{0, 0, 0, 0}, 42); err != nil {
		t.Fatal(err)
	}
	if err := loader.Close(); err != nil {
		t.Fatal(err)
	}
	third, err := db.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if db.PlanCacheHits() != 1 {
		t.Fatal("stale plan served from cache after a load")
	}
	if !strings.Contains(third.Plan, "ABCD") {
		t.Fatalf("post-load plan should use the base table: %q", third.Plan)
	}
	// And refresh restores view usage with a fresh plan.
	if err := db.Refresh(); err != nil {
		t.Fatal(err)
	}
	fourth, err := db.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if fourth.Plan == third.Plan {
		t.Fatal("plan unchanged after refresh")
	}
}

func TestAnswerClassStats(t *testing.T) {
	db := sample(t)
	ans, err := db.Query(`{A''.A1.CHILDREN, A''.A1} on COLUMNS {B''.B1} on ROWS CONTEXT ABCD FILTER (D'.DD1)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Classes) == 0 {
		t.Fatal("no class stats")
	}
	var covered int
	var sim float64
	for _, cs := range ans.Classes {
		if cs.View == "" || (cs.Regime != "scan" && cs.Regime != "probe") {
			t.Fatalf("bad class stat %+v", cs)
		}
		covered += len(cs.Queries)
		sim += cs.SimulatedSeconds
	}
	if covered != len(ans.Queries) {
		t.Fatalf("class stats cover %d queries, answer has %d", covered, len(ans.Queries))
	}
	if diff := sim - ans.Stats.SimulatedSeconds; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("class sims sum to %v, total %v", sim, ans.Stats.SimulatedSeconds)
	}
}

func TestQueryContextCancellation(t *testing.T) {
	db := sample(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryContext(ctx, `{A''.A1} on COLUMNS CONTEXT ABCD FILTER (D'.DD1)`, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

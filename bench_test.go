package mdxopt

// Benchmarks regenerating the paper's evaluation. One benchmark exists
// per table and figure:
//
//	BenchmarkTable1Sizes          Table 1   (database profile)
//	BenchmarkTest1SharedScan      Figure 10 (shared-scan hash star join)
//	BenchmarkTest2SharedIndex     Figure 11 (shared index star join)
//	BenchmarkTest3SharedMixed     Figure 12 (mixed shared scan)
//	BenchmarkTest4Algorithms      Table 2, Q1 Q2 Q3
//	BenchmarkTest5Algorithms      Table 2, Q2 Q3 Q5
//	BenchmarkTest6Algorithms      Table 2, Q6 Q7 Q8
//	BenchmarkTest7Algorithms      Table 2, Q1 Q7 Q9
//
// plus ablations and micro-benchmarks of the substrate. Custom metrics
// report the paper's quantities: sim-s-* is simulated seconds on the
// 1998 hardware model, speedup is separate/shared.
//
// The benchmark database scale defaults to 0.05 (100k rows) and can be
// set with MDXOPT_BENCH_SCALE (1.0 = the paper's 2M rows).

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"mdxopt/internal/core"
	"mdxopt/internal/exec"
	"mdxopt/internal/experiments"
	"mdxopt/internal/mdx"
	"mdxopt/internal/plan"
	"mdxopt/internal/query"
	"mdxopt/internal/workload"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
	benchErr    error
	benchDir    string
)

func benchScale() float64 {
	if s := os.Getenv("MDXOPT_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.05
}

func runner(b *testing.B) *experiments.Runner {
	b.Helper()
	benchOnce.Do(func() {
		benchDir, benchErr = os.MkdirTemp("", "mdxopt-bench")
		if benchErr != nil {
			return
		}
		benchRunner, benchErr = experiments.Open(benchDir+"/db", benchScale())
	})
	if benchErr != nil {
		b.Fatalf("bench database: %v", benchErr)
	}
	return benchRunner
}

func BenchmarkTable1Sizes(b *testing.B) {
	r := runner(b)
	var tbl *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		tbl = r.Table1()
	}
	base := float64(tbl.Views[0].Rows)
	for _, v := range tbl.Views {
		b.ReportMetric(float64(v.Rows)/base, "ratio-"+sanitizeMetric(v.Name))
	}
}

func sanitizeMetric(name string) string {
	out := ""
	for _, r := range name {
		if r == '\'' {
			out += "p"
		} else {
			out += string(r)
		}
	}
	return out
}

func benchSharedOp(b *testing.B, run func() (*experiments.SharedOpResult, error)) {
	var res *experiments.SharedOpResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	last := res.Steps[len(res.Steps)-1]
	b.ReportMetric(res.Speedup(), "speedup")
	b.ReportMetric(last.Separate.SimSeconds, "sim-s-separate")
	b.ReportMetric(last.Shared.SimSeconds, "sim-s-shared")
	b.ReportMetric(float64(last.Shared.PageReads), "pages-shared")
}

func BenchmarkTest1SharedScan(b *testing.B)  { benchSharedOp(b, runner(b).Test1) }
func BenchmarkTest2SharedIndex(b *testing.B) { benchSharedOp(b, runner(b).Test2) }
func BenchmarkTest3SharedMixed(b *testing.B) { benchSharedOp(b, runner(b).Test3) }

func benchAlgos(b *testing.B, run func() (*experiments.AlgoResult, error)) {
	var res *experiments.AlgoResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.Measured.SimSeconds, "sim-s-"+row.Algorithm)
	}
}

func BenchmarkTest4Algorithms(b *testing.B) { benchAlgos(b, runner(b).Test4) }
func BenchmarkTest5Algorithms(b *testing.B) { benchAlgos(b, runner(b).Test5) }
func BenchmarkTest6Algorithms(b *testing.B) { benchAlgos(b, runner(b).Test6) }
func BenchmarkTest7Algorithms(b *testing.B) { benchAlgos(b, runner(b).Test7) }

func benchAblation(b *testing.B, run func() (*experiments.AblationResult, error)) {
	var res *experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, row := range res.Rows {
		b.ReportMetric(row.Measured.SimSeconds, fmt.Sprintf("sim-s-cfg%d", i))
	}
}

func BenchmarkAblationLookupSharing(b *testing.B) {
	benchAblation(b, runner(b).AblationLookupSharing)
}

func BenchmarkAblationFilterConversion(b *testing.B) {
	benchAblation(b, runner(b).AblationFilterConversion)
}

func BenchmarkAblationRandSeqRatio(b *testing.B) {
	benchAblation(b, runner(b).AblationRandSeqRatio)
}

func BenchmarkAblationGreedyOrder(b *testing.B) {
	benchAblation(b, runner(b).AblationGreedyOrder)
}

func BenchmarkAblationCompressedIndexes(b *testing.B) {
	benchAblation(b, runner(b).AblationCompressedIndexes)
}

func BenchmarkAblationStatsUnderSkew(b *testing.B) {
	benchAblation(b, runner(b).AblationStatsUnderSkew)
}

func BenchmarkOptimizerStudy(b *testing.B) {
	r := runner(b)
	var res *experiments.StudyResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.OptimizerStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the 9-query effort of each algorithm.
	for _, row := range res.Rows {
		if row.Queries == 9 {
			b.ReportMetric(float64(row.CostEvals), "evals9-"+row.Algorithm)
		}
	}
}

// --- micro-benchmarks of the substrate and operators ---

func benchQueries(b *testing.B, names ...string) []*query.Query {
	b.Helper()
	r := runner(b)
	out := make([]*query.Query, len(names))
	for i, n := range names {
		out[i] = r.Queries[n]
	}
	return out
}

func BenchmarkHashJoinSingleQuery(b *testing.B) {
	r := runner(b)
	q := benchQueries(b, "Q1")[0]
	env := exec.NewEnv(r.DB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st exec.Stats
		if _, err := exec.HashJoinQuery(env, r.DB.Base(), q, &st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSharedScanHash4Queries(b *testing.B) {
	r := runner(b)
	group := benchQueries(b, "Q1", "Q2", "Q3", "Q4")
	env := exec.NewEnv(r.DB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st exec.Stats
		if _, err := exec.SharedScanHash(env, r.DB.Base(), group, &st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexJoinSingleQuery(b *testing.B) {
	r := runner(b)
	q := benchQueries(b, "Q7")[0]
	view := r.DB.ViewByLevels([]int{1, 1, 1, 0})
	env := exec.NewEnv(r.DB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st exec.Stats
		if _, err := exec.IndexJoinQuery(env, view, q, &st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSharedIndex4Queries(b *testing.B) {
	r := runner(b)
	group := benchQueries(b, "Q5", "Q6", "Q7", "Q8")
	view := r.DB.ViewByLevels([]int{1, 1, 1, 0})
	env := exec.NewEnv(r.DB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st exec.Stats
		if _, err := exec.SharedIndex(env, view, group, &st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSharedScanHashParallel(b *testing.B) {
	r := runner(b)
	group := benchQueries(b, "Q1", "Q2", "Q3", "Q4")
	env := exec.NewEnv(r.DB)
	env.Parallelism = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st exec.Stats
		if _, err := exec.SharedScanHash(env, r.DB.Base(), group, &st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveOracle(b *testing.B) {
	r := runner(b)
	q := benchQueries(b, "Q3")[0]
	env := exec.NewEnv(r.DB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Naive(env, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizerGG(b *testing.B) {
	r := runner(b)
	queries := benchQueries(b, "Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9")
	est := plan.NewEstimator(r.DB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(est, queries, core.GG); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizerExhaustive(b *testing.B) {
	r := runner(b)
	queries := benchQueries(b, "Q1", "Q2", "Q3", "Q5", "Q7", "Q9")
	est := plan.NewPaperEstimator(r.DB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(est, queries, core.Optimal); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMDXParseTranslate(b *testing.B) {
	r := runner(b)
	src := workload.MDX()["Q9"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mdx.ParseAndTranslate(r.DB.Schema, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaseTableScan(b *testing.B) {
	r := runner(b)
	base := r.DB.Base()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		err := base.Heap.Scan(func(row int64, keys []int32, ms []float64) error {
			sum += ms[0]
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(r.DB.Schema.RowWidthBytes()) * r.DB.Base().Rows())
}
